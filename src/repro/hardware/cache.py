"""CPU cache models.

Two distinct models, for two distinct jobs:

* :class:`LineCacheModel` — a *timing-only* LRU cache of 64 B lines. It
  never stores data; it just answers "would this access have hit the CPU
  cache hierarchy?" so that :class:`~repro.hardware.memory.MappedMemory`
  can charge hit vs. miss latency. This is what lets a CXL-resident
  buffer pool perform within a few percent of DRAM (paper Fig. 3): hot
  B-tree internals stay cached.

* :class:`CpuCache` — a *functional* write-back cache used in the
  multi-primary data-sharing scenario, where correctness depends on it.
  CXL 2.0 provides no cross-host hardware coherency, so a store by node A
  can sit dirty in A's cache, and node B can keep reading a stale clean
  copy, until software intervenes. This class reproduces those hazards:
  dirty lines really do hide updates from the backing region until
  ``clflush``, and stale clean lines really do serve old data until
  invalidated. The coherency protocol in :mod:`repro.core.coherency` is
  correct iff the tests built on this model observe no stale reads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..analysis.memsan import active as memsan_active
from ..faults.injector import crash_point
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from ..sim.latency import CACHE_LINE
from .memory import AccessMeter, LineCacheProtocol, MemoryRegion

__all__ = ["LineCacheModel", "CpuCache"]


class LineCacheModel(LineCacheProtocol):
    """Timing-only LRU cache over (region, line) keys.

    >>> cache = LineCacheModel(capacity_bytes=1024)
    >>> cache.touch("dram", 0)        # cold: miss, line inserted
    False
    >>> cache.touch("dram", 0)        # warm: hit
    True
    >>> cache.touch_range("dram", 0, 3)   # 1 warm line + 3 cold ones
    (1, 3)
    """

    def __init__(self, capacity_bytes: int = 32 << 20) -> None:
        if capacity_bytes < CACHE_LINE:
            raise ValueError("cache smaller than one line")
        self.capacity_lines = capacity_bytes // CACHE_LINE
        self._lines: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, region_name: str, line: int) -> bool:
        """Access a line; returns True on hit. Inserts on miss."""
        key = (region_name, line)
        lines = self._lines
        if key in lines:
            lines.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        lines[key] = None
        if len(lines) > self.capacity_lines:
            lines.popitem(last=False)
        return False

    def touch_range(
        self, region_name: str, first_line: int, last_line: int
    ) -> tuple[int, int]:
        """Coalesced probe of ``first_line..last_line`` inclusive.

        Exactly equivalent to calling :meth:`touch` per line (same LRU
        moves, same insertion and eviction order), but with the dict,
        bound methods and capacity hoisted out of the loop — the single
        hottest call in every metered small access.
        """
        lines = self._lines
        if first_line == last_line:  # the common single-line access
            key = (region_name, first_line)
            if key in lines:
                lines.move_to_end(key)
                self.hits += 1
                return 1, 0
            lines[key] = None
            if len(lines) > self.capacity_lines:
                lines.popitem(last=False)
            self.misses += 1
            return 0, 1
        move_to_end = lines.move_to_end
        popitem = lines.popitem
        capacity = self.capacity_lines
        hits = 0
        misses = 0
        for line in range(first_line, last_line + 1):
            key = (region_name, line)
            if key in lines:
                move_to_end(key)
                hits += 1
            else:
                misses += 1
                lines[key] = None
                if len(lines) > capacity:
                    popitem(last=False)
        self.hits += hits
        self.misses += misses
        return hits, misses

    def drop_region(self, region_name: str) -> None:
        self._lines = OrderedDict(
            (key, None) for key in self._lines if key[0] != region_name
        )

    def drop_lines(self, region_name: str, first_line: int, last_line: int) -> None:
        for line in range(first_line, last_line + 1):
            self._lines.pop((region_name, line), None)

    def clear(self) -> None:
        self._lines.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CpuCache:
    """Functional write-back line cache over shared memory regions.

    Reads pull whole lines from the backing region into the cache and are
    served from cached copies thereafter — including *stale* copies if
    another host changed the region. Writes dirty the cached lines and
    are **not** visible in the backing region until the lines are flushed
    (explicit ``clflush`` or capacity eviction).

    Latency accounting (into ``meter``, when provided): line fills and
    write-backs charge ``miss_ns`` per line; cached accesses charge
    ``hit_ns``. Bytes written back are charged to ``pipe_key``.
    """

    def __init__(
        self,
        name: str,
        capacity_lines: int = 1 << 16,
        meter: Optional[AccessMeter] = None,
        miss_ns: float = 0.0,
        hit_ns: float = 0.0,
        pipe_key: Optional[str] = None,
    ) -> None:
        self.name = name
        self.capacity_lines = capacity_lines
        self.meter = meter
        self.miss_ns = miss_ns
        self.hit_ns = hit_ns
        self.pipe_key = pipe_key
        # (region, line) -> [bytes, dirty]
        self._lines: OrderedDict[tuple[str, int], list] = OrderedDict()
        self._regions: dict[str, MemoryRegion] = {}
        self.fills = 0
        self.write_backs = 0
        self.stale_serves = 0  # diagnostic: cached reads (may be stale)

    # -- data path --------------------------------------------------------------

    def read(self, region: MemoryRegion, offset: int, nbytes: int) -> bytes:
        """Read through the cache; cached lines win over backing memory."""
        self._regions[region.name] = region
        if nbytes <= 0:
            return b""
        line = offset // CACHE_LINE
        if offset + nbytes <= (line + 1) * CACHE_LINE:
            # Single-line access (flags, lock words, LRU links): skip the
            # span generator and the bytearray assembly.
            line_off = offset - line * CACHE_LINE
            return self._load_entry(region, line)[0][line_off : line_off + nbytes]
        out = bytearray()
        for line, line_off, span in _line_spans(offset, nbytes):
            data = self._load_line(region, line)
            out += data[line_off : line_off + span]
        return bytes(out)

    def write(self, region: MemoryRegion, offset: int, data: bytes) -> None:
        """Write into the cache only; backing memory unchanged until flush."""
        self._regions[region.name] = region
        nbytes = len(data)
        if nbytes <= 0:
            return
        line = offset // CACHE_LINE
        if offset + nbytes <= (line + 1) * CACHE_LINE:
            entry = self._load_entry(region, line)
            line_off = offset - line * CACHE_LINE
            buf = bytearray(entry[0])
            buf[line_off : line_off + nbytes] = data
            entry[0] = bytes(buf)
            entry[1] = True
            ms = memsan_active()
            if ms is not None:
                ms.cache_store(self.name, region.name, line)
            return
        pos = 0
        ms = memsan_active()
        for line, line_off, span in _line_spans(offset, nbytes):
            entry = self._load_entry(region, line)
            buf = bytearray(entry[0])
            buf[line_off : line_off + span] = data[pos : pos + span]
            entry[0] = bytes(buf)
            entry[1] = True
            if ms is not None:
                ms.cache_store(self.name, region.name, line)
            pos += span

    def clflush(self, region: MemoryRegion, offset: int, nbytes: int) -> int:
        """Flush-and-invalidate the lines covering [offset, offset+nbytes).

        Dirty lines are written to the backing region; all covered lines
        are dropped from the cache (as x86 ``clflush`` does). Returns the
        number of dirty lines written back.
        """
        written = 0
        ms = memsan_active()
        for line in _line_range(offset, nbytes):
            # Crash between line flushes: lines already flushed are in
            # the backing region, the rest die dirty in this cache — a
            # torn line-set flush, the hazard the per-line write-release
            # protocol (§3.3) must tolerate.
            crash_point("cache.clflush.line")
            entry = self._lines.pop((region.name, line), None)
            if entry is None:
                continue
            if entry[1]:
                if ms is None:
                    region.write(line * CACHE_LINE, entry[0])
                else:
                    with ms.internal():
                        region.write(line * CACHE_LINE, entry[0])
                    ms.cache_flush_line(self.name, region.name, line, dirty=True)
                written += 1
            elif ms is not None:
                ms.cache_flush_line(self.name, region.name, line, dirty=False)
        self.write_backs += written
        if self.meter is not None and written:
            self._charge_writeback(written)
        tracer = obs_active()
        if tracer is not None and written:
            tracer.count("cache.lines_flushed", written)
            tracer.count("cache.flush_bytes", written * CACHE_LINE)
        return written

    def invalidate(self, region: MemoryRegion, offset: int, nbytes: int) -> int:
        """Drop lines without write-back (only safe when they are clean).

        Returns the number of lines dropped so callers can charge the
        per-line invalidation cost.
        """
        dropped = 0
        ms = memsan_active()
        for line in _line_range(offset, nbytes):
            if self._lines.pop((region.name, line), None) is not None:
                dropped += 1
                if ms is not None:
                    ms.cache_invalidate_line(self.name, region.name, line)
        tracer = obs_active()
        if tracer is not None and dropped:
            tracer.count("cache.lines_invalidated", dropped)
        return dropped

    def drop_all(self) -> None:
        """Crash semantics: every cached line, dirty or not, is gone."""
        self._lines.clear()
        ms = memsan_active()
        if ms is not None:
            ms.cache_dropped(self.name)

    def dirty_lines(self, region: MemoryRegion, offset: int, nbytes: int) -> int:
        """How many lines in the range are dirty (diagnostics/tests)."""
        count = 0
        for line in _line_range(offset, nbytes):
            entry = self._lines.get((region.name, line))
            if entry is not None and entry[1]:
                count += 1
        return count

    # -- internals ---------------------------------------------------------------

    def _load_entry(self, region: MemoryRegion, line: int) -> list:
        key = (region.name, line)
        entry = self._lines.get(key)
        ms = memsan_active()
        if entry is None:
            if ms is None:
                data = region.read(line * CACHE_LINE, CACHE_LINE)
            else:
                with ms.internal():
                    data = region.read(line * CACHE_LINE, CACHE_LINE)
                ms.cache_load(self.name, region.name, line, fetched=True)
            entry = [data, False]
            self._lines[key] = entry
            self.fills += 1
            tracer = obs_active()
            if tracer is not None:
                tracer.count("cache.lines_filled")
            if self.meter is not None:
                self.meter.charge_ns(self.miss_ns)
                if self.pipe_key is not None:
                    self.meter.charge_transfer(self.pipe_key, CACHE_LINE)
                spans = spans_active()
                if spans is not None:
                    spans.add_ns("cxl_access", self.miss_ns)
            self._evict_if_needed()
        else:
            self._lines.move_to_end(key)
            self.stale_serves += 1
            if ms is not None:
                ms.cache_load(self.name, region.name, line, fetched=False)
            if self.meter is not None:
                self.meter.charge_ns(self.hit_ns)
                spans = spans_active()
                if spans is not None:
                    spans.add_ns("cxl_access", self.hit_ns)
        return entry

    def _load_line(self, region: MemoryRegion, line: int) -> bytes:
        return self._load_entry(region, line)[0]

    def _evict_if_needed(self) -> None:
        while len(self._lines) > self.capacity_lines:
            (region_name, line), entry = self._lines.popitem(last=False)
            ms = memsan_active()
            if entry[1]:
                # Background write-back of a dirty line on capacity eviction
                # — this is the "flushed to CXL memory in the background"
                # hazard from §3.3.
                region = self._regions[region_name]
                if ms is None:
                    region.write(line * CACHE_LINE, entry[0])
                else:
                    with ms.internal():
                        region.write(line * CACHE_LINE, entry[0])
                    ms.cache_flush_line(self.name, region_name, line, dirty=True)
                self.write_backs += 1
                if self.meter is not None:
                    self._charge_writeback(1)
                tracer = obs_active()
                if tracer is not None:
                    tracer.count("cache.evict_writebacks")
                    tracer.emit(
                        "cache",
                        "evict_writeback",
                        cache=self.name,
                        region=region_name,
                        line=line,
                    )
            elif ms is not None:
                ms.cache_invalidate_line(self.name, region_name, line)

    def _charge_writeback(self, lines: int) -> None:
        assert self.meter is not None
        self.meter.charge_ns(lines * self.miss_ns)
        if self.pipe_key is not None:
            self.meter.charge_transfer(self.pipe_key, lines * CACHE_LINE)


def _line_range(offset: int, nbytes: int) -> range:
    """Line indices covering [offset, offset+nbytes); empty when nbytes<=0."""
    if nbytes <= 0:
        return range(0)
    return range(offset // CACHE_LINE, (offset + nbytes - 1) // CACHE_LINE + 1)


def _line_spans(offset: int, nbytes: int):
    """Yield (line_index, offset_within_line, span) covering a range."""
    if nbytes <= 0:
        return
    pos = offset
    end = offset + nbytes
    while pos < end:
        line = pos // CACHE_LINE
        line_off = pos - line * CACHE_LINE
        span = min(CACHE_LINE - line_off, end - pos)
        yield line, line_off, span
        pos += span

"""RDMA NIC model.

Captures the three properties that drive the paper's RDMA results:

* a hard per-host bandwidth ceiling (ConnectX-6: 100 Gb/s ≈ 12 GB/s) —
  the saturation point in Figures 7–9,
* a large fixed per-operation latency (Table 2: ~4.5 µs regardless of
  payload) from RTT, protocol conversion, and NIC DMA,
* an operations/second ceiling from doorbell-register contention and NIC
  cache thrashing (§2.2 item 3) — IOPS-bound workloads stop scaling even
  when bandwidth is available.

Both ceilings are FIFO pipes, so exceeding either builds queueing delay
— the linear latency climb past saturation in Figure 7's middle panel.
"""

from __future__ import annotations

from ..obs.spans import active as spans_active
from ..sim.core import Event, Simulator
from ..sim.latency import LatencyConfig
from ..sim.resources import Pipe

__all__ = ["RdmaNic"]


class RdmaNic:
    """One host's RDMA NIC: a data pipe plus an ops (IOPS) pipe."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: LatencyConfig | None = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or LatencyConfig()
        self.data_pipe = Pipe(
            sim, self.config.rdma_nic_bandwidth, name=f"{name}.data"
        )
        # Each operation "transfers" one unit through the ops pipe, whose
        # rate is the NIC's IOPS ceiling.
        self.ops_pipe = Pipe(sim, self.config.rdma_nic_max_iops, name=f"{name}.ops")

    def read_ns(self, nbytes: int) -> float:
        """Unloaded one-sided READ latency (Table 2 model)."""
        return self.config.rdma_read_ns(nbytes)

    def write_ns(self, nbytes: int) -> float:
        """Unloaded one-sided WRITE latency (Table 2 model)."""
        return self.config.rdma_write_ns(nbytes)

    def read(self, nbytes: int) -> Event:
        """Issue a READ inside the simulation; fires when data has landed."""
        self._record_op("read", nbytes, self.read_ns(nbytes))
        self.ops_pipe.transfer(1)
        return self.data_pipe.transfer(nbytes, base_ns=int(self.read_ns(nbytes)))

    def write(self, nbytes: int) -> Event:
        """Issue a WRITE inside the simulation; fires on completion."""
        self._record_op("write", nbytes, self.write_ns(nbytes))
        self.ops_pipe.transfer(1)
        return self.data_pipe.transfer(nbytes, base_ns=int(self.write_ns(nbytes)))

    def send_message(self) -> Event:
        """A small two-sided message (e.g. an invalidation or RPC)."""
        self._record_op("message", 256, self.config.rdma_message_ns)
        self.ops_pipe.transfer(1)
        return self.data_pipe.transfer(
            256, base_ns=int(self.config.rdma_message_ns)
        )

    def _record_op(self, op: str, nbytes: int, base_ns: float) -> None:
        """Span hook: one closed ``rpc`` span per NIC operation.

        The recorded duration is the unloaded Table 2 latency; queueing
        on the pipes shows up separately (``pipe_wait``) when the caller
        settles with a span.
        """
        spans = spans_active()
        if spans is not None:
            spans.record("rpc", f"rdma_{op}", ns=base_ns, nic=self.name, nbytes=nbytes)

    @property
    def bandwidth_used(self) -> float:
        """Observed bytes/second over the current measurement window."""
        return self.data_pipe.window_bandwidth()

"""Byte-addressable memory regions and access metering.

A :class:`MemoryRegion` is the *functional* substance of the simulation:
a bytearray with explicit volatility semantics. Host DRAM regions lose
their contents on a crash (``power_fail`` poisons them); CXL-box regions
survive, because the switch and memory devices have independent power
supply units (paper §3.2).

A :class:`MappedMemory` is a host's window onto a region through a
particular interconnect. Every read/write is metered: latency is charged
to an :class:`AccessMeter` (using a per-line timing cache to model the
CPU cache absorbing repeat accesses) and bytes are recorded as pending
transfers against named bandwidth pipes, which the workload driver
settles inside the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.trace import active as obs_active
from ..sim.latency import CACHE_LINE

__all__ = [
    "MemoryRegion",
    "AccessMeter",
    "TransferCharge",
    "MappedMemory",
    "PoisonedMemoryError",
]

_POISON = 0xDE


class PoisonedMemoryError(RuntimeError):
    """Raised when reading a volatile region after a power failure."""


class MemoryRegion:
    """A contiguous span of simulated physical memory."""

    def __init__(self, name: str, size: int, volatile: bool) -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        self.name = name
        self.size = size
        self.volatile = volatile
        self._data = bytearray(size)
        self._poisoned = False

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._poisoned:
            raise PoisonedMemoryError(
                f"region {self.name!r} lost its contents in a power failure; "
                "call power_restore() before reuse"
            )
        self._check(offset, nbytes)
        return bytes(self._data[offset : offset + nbytes])

    def write(self, offset: int, data: bytes) -> None:
        if self._poisoned:
            raise PoisonedMemoryError(
                f"region {self.name!r} lost its contents in a power failure; "
                "call power_restore() before reuse"
            )
        self._check(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def power_fail(self) -> None:
        """Simulate power loss. Volatile regions are poisoned until restored.

        Idempotent: failing an already-failed region (cascading faults in
        a sweep) is a no-op, as is failing a non-volatile region — CXL
        boxes have their own PSUs (§3.2), so host power events never
        touch them.
        """
        if self.volatile:
            self._poisoned = True

    def power_restore(self) -> None:
        """Bring a failed region back: fresh, zeroed, contents gone.

        Idempotent: restoring a healthy region keeps its contents —
        only a poisoned region is re-zeroed.
        """
        if self._poisoned:
            self._data = bytearray(self.size)
            self._poisoned = False

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"{self.name!r} of size {self.size}"
            )


@dataclass(frozen=True)
class TransferCharge:
    """A pending bandwidth charge to settle against a named pipe."""

    pipe_key: str
    nbytes: int
    base_ns: float = 0.0


class AccessMeter:
    """Accumulates the cost of functional work for one engine instance.

    ``ns`` is CPU-visible latency (memory stalls, compute). ``transfers``
    are bytes that must additionally flow through shared pipes (RDMA NIC,
    CXL link, storage, WAL device, client network); the driver turns them
    into simulated pipe occupancy, which is where saturation comes from.
    ``counters`` holds free-form byte/op counts for reporting (e.g. read
    amplification).
    """

    def __init__(self) -> None:
        self.ns: float = 0.0
        self.transfers: list[TransferCharge] = []
        self.counters: dict[str, float] = {}

    def charge_ns(self, ns: float) -> None:
        self.ns += ns

    def charge_transfer(
        self, pipe_key: str, nbytes: int, base_ns: float = 0.0
    ) -> None:
        self.transfers.append(TransferCharge(pipe_key, nbytes, base_ns))
        self.count(pipe_key + "_bytes", nbytes)
        self.count(pipe_key + "_ops", 1)

    def count(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def take(self) -> tuple[float, list[TransferCharge]]:
        """Return and clear the per-operation charges (counters persist)."""
        ns, self.ns = self.ns, 0.0
        transfers, self.transfers = self.transfers, []
        return ns, transfers

    def reset(self) -> None:
        self.ns = 0.0
        self.transfers = []
        self.counters = {}


@dataclass(frozen=True)
class MemoryTiming:
    """Latency parameters for one interconnect path to a region."""

    miss_ns: float  # one cache line fetched from the device
    hit_ns: float  # line already in the CPU cache hierarchy
    read_burst_base_ns: float  # fixed cost of a bulk (streamed) read
    read_burst_ns_per_byte: float
    write_burst_base_ns: float  # fixed cost of a bulk (streamed) write
    write_burst_ns_per_byte: float
    pipe_key: Optional[str] = None  # bandwidth pipe charged per byte moved
    pipe_base_ns: float = 0.0

    # Bulk accesses at or above this size use the burst model and bypass
    # the line cache (non-temporal/streaming semantics).
    burst_threshold: int = 256


class MappedMemory:
    """A metered, cache-modelled window onto a :class:`MemoryRegion`."""

    def __init__(
        self,
        region: MemoryRegion,
        timing: MemoryTiming,
        meter: AccessMeter,
        line_cache: "LineCacheProtocol",
        counter_key: str,
    ) -> None:
        self.region = region
        self.timing = timing
        self.meter = meter
        self.line_cache = line_cache
        self.counter_key = counter_key

    # -- metered access --------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        self._charge(offset, nbytes, write=False)
        return self.region.read(offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self._charge(offset, len(data), write=True)
        self.region.write(offset, data)

    def read_unmetered(self, offset: int, nbytes: int) -> bytes:
        """Functional read with no timing charge (recovery bookkeeping)."""
        return self.region.read(offset, nbytes)

    def write_unmetered(self, offset: int, data: bytes) -> None:
        self.region.write(offset, data)

    # -- cost model -------------------------------------------------------------

    def _charge(self, offset: int, nbytes: int, write: bool) -> None:
        timing = self.timing
        meter = self.meter
        tracer = obs_active()
        if nbytes >= timing.burst_threshold:
            if write:
                meter.charge_ns(
                    timing.write_burst_base_ns
                    + nbytes * timing.write_burst_ns_per_byte
                )
            else:
                meter.charge_ns(
                    timing.read_burst_base_ns
                    + nbytes * timing.read_burst_ns_per_byte
                )
            device_bytes = nbytes  # streamed: every byte crosses the link
            if tracer is not None:
                tracer.count(f"mem.{self.counter_key}.burst_bytes", nbytes)
        else:
            first_line = offset // CACHE_LINE
            last_line = (offset + max(nbytes, 1) - 1) // CACHE_LINE
            hits = 0
            misses = 0
            for line in range(first_line, last_line + 1):
                if self.line_cache.touch(self.region.name, line):
                    hits += 1
                else:
                    misses += 1
            meter.charge_ns(misses * timing.miss_ns + hits * timing.hit_ns)
            # Only cache misses generate device/link traffic, at line
            # granularity — a hot B-tree root costs the CXL link nothing.
            device_bytes = misses * CACHE_LINE
            if tracer is not None:
                if hits:
                    tracer.count(f"mem.{self.counter_key}.line_hits", hits)
                if misses:
                    tracer.count(f"mem.{self.counter_key}.line_misses", misses)
        meter.count(self.counter_key + "_touched_bytes", nbytes)
        if tracer is not None and device_bytes:
            tracer.count(f"mem.{self.counter_key}.device_bytes", device_bytes)
        if timing.pipe_key is not None and device_bytes:
            meter.charge_transfer(timing.pipe_key, device_bytes, timing.pipe_base_ns)


class WindowedMemory:
    """A sub-range of a mapped memory, addressed from zero.

    Used for CXL extents: the memory manager hands a tenant an offset
    into the shared pool, and the tenant addresses its extent relative
    to that offset (what ``mmap`` of the dax device at an offset gives).
    """

    __slots__ = ("mapped", "base", "size")

    def __init__(self, mapped: MappedMemory, base: int, size: int) -> None:
        if base < 0 or base + size > mapped.region.size:
            raise IndexError("window outside the mapped region")
        self.mapped = mapped
        self.base = base
        self.size = size

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside window of "
                f"size {self.size}"
            )

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return self.mapped.read(self.base + offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.mapped.write(self.base + offset, data)

    def read_unmetered(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return self.mapped.read_unmetered(self.base + offset, nbytes)

    def write_unmetered(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.mapped.write_unmetered(self.base + offset, data)


class LineCacheProtocol:
    """Interface for the timing-only CPU cache model."""

    def touch(self, region_name: str, line: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def drop_region(self, region_name: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def drop_lines(
        self, region_name: str, first_line: int, last_line: int
    ) -> None:  # pragma: no cover
        raise NotImplementedError

"""Byte-addressable memory regions and access metering.

A :class:`MemoryRegion` is the *functional* substance of the simulation:
a bytearray with explicit volatility semantics. Host DRAM regions lose
their contents on a crash (``power_fail`` poisons them); CXL-box regions
survive, because the switch and memory devices have independent power
supply units (paper §3.2).

A :class:`MappedMemory` is a host's window onto a region through a
particular interconnect. Every read/write is metered: latency is charged
to an :class:`AccessMeter` (using a per-line timing cache to model the
CPU cache absorbing repeat accesses) and bytes are recorded as pending
transfers against named bandwidth pipes, which the workload driver
settles inside the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.memsan import active as memsan_active
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from ..sim.latency import CACHE_LINE, LatencyTable

__all__ = [
    "MemoryRegion",
    "AccessMeter",
    "TransferCharge",
    "MappedMemory",
    "PoisonedMemoryError",
]

_POISON = 0xDE


class PoisonedMemoryError(RuntimeError):
    """Raised when reading a volatile region after a power failure."""


class MemoryRegion:
    """A contiguous span of simulated physical memory."""

    def __init__(self, name: str, size: int, volatile: bool) -> None:
        if size <= 0:
            raise ValueError("region size must be positive")
        self.name = name
        self.size = size
        self.volatile = volatile
        self._data = bytearray(size)
        self._poisoned = False

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._poisoned:
            raise PoisonedMemoryError(
                f"region {self.name!r} lost its contents in a power failure; "
                "call power_restore() before reuse"
            )
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            self._check(offset, nbytes)
        ms = memsan_active()
        if ms is not None:
            ms.raw_load(self.name, offset, nbytes)
        return bytes(self._data[offset : offset + nbytes])

    def write(self, offset: int, data: bytes) -> None:
        if self._poisoned:
            raise PoisonedMemoryError(
                f"region {self.name!r} lost its contents in a power failure; "
                "call power_restore() before reuse"
            )
        nbytes = len(data)
        if offset < 0 or offset + nbytes > self.size:
            self._check(offset, nbytes)
        ms = memsan_active()
        if ms is not None:
            ms.raw_store(self.name, offset, nbytes)
        self._data[offset : offset + nbytes] = data

    def power_fail(self) -> None:
        """Simulate power loss. Volatile regions are poisoned until restored.

        Idempotent: failing an already-failed region (cascading faults in
        a sweep) is a no-op, as is failing a non-volatile region — CXL
        boxes have their own PSUs (§3.2), so host power events never
        touch them.
        """
        if self.volatile:
            self._poisoned = True

    def power_restore(self) -> None:
        """Bring a failed region back: fresh, zeroed, contents gone.

        Idempotent: restoring a healthy region keeps its contents —
        only a poisoned region is re-zeroed.
        """
        if self._poisoned:
            self._data = bytearray(self.size)
            self._poisoned = False

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside region "
                f"{self.name!r} of size {self.size}"
            )


class TransferCharge:
    """A pending bandwidth charge to settle against a named pipe.

    A plain slotted record rather than a frozen dataclass: one of these
    is allocated per metered device transfer, and ``object.__setattr__``
    (what frozen dataclasses pay per field) showed up in the hot-path
    profile. Treat instances as immutable all the same.

    >>> TransferCharge("cxl", 64) == TransferCharge("cxl", 64, 0.0)
    True
    """

    __slots__ = ("pipe_key", "nbytes", "base_ns")

    def __init__(self, pipe_key: str, nbytes: int, base_ns: float = 0.0) -> None:
        self.pipe_key = pipe_key
        self.nbytes = nbytes
        self.base_ns = base_ns

    def __repr__(self) -> str:
        return (
            f"TransferCharge(pipe_key={self.pipe_key!r}, "
            f"nbytes={self.nbytes!r}, base_ns={self.base_ns!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransferCharge):
            return NotImplemented
        return (
            self.pipe_key == other.pipe_key
            and self.nbytes == other.nbytes
            and self.base_ns == other.base_ns
        )

    def __hash__(self) -> int:
        return hash((self.pipe_key, self.nbytes, self.base_ns))


# Memoized "<pipe_key>_bytes" / "<pipe_key>_ops" counter names: the same
# handful of pipe keys recur millions of times, and building the strings
# per charge was measurable.
_PIPE_COUNTER_KEYS: dict[str, tuple[str, str]] = {}


class AccessMeter:
    """Accumulates the cost of functional work for one engine instance.

    ``ns`` is CPU-visible latency (memory stalls, compute). ``transfers``
    are bytes that must additionally flow through shared pipes (RDMA NIC,
    CXL link, storage, WAL device, client network); the driver turns them
    into simulated pipe occupancy, which is where saturation comes from.
    ``counters`` holds free-form byte/op counts for reporting (e.g. read
    amplification).
    """

    def __init__(self) -> None:
        self.ns: float = 0.0
        self.transfers: list[TransferCharge] = []
        self.counters: dict[str, float] = {}
        # Monotone total of everything take() has drained, so span
        # tracing can snapshot (ns + taken_ns) and difference it later
        # without caring whether a settle happened in between.
        self.taken_ns: float = 0.0

    def charge_ns(self, ns: float) -> None:
        self.ns += ns

    def charge_transfer(
        self, pipe_key: str, nbytes: int, base_ns: float = 0.0
    ) -> None:
        self.transfers.append(TransferCharge(pipe_key, nbytes, base_ns))
        keys = _PIPE_COUNTER_KEYS.get(pipe_key)
        if keys is None:
            keys = _PIPE_COUNTER_KEYS[pipe_key] = (
                pipe_key + "_bytes",
                pipe_key + "_ops",
            )
        counters = self.counters
        bytes_key, ops_key = keys
        counters[bytes_key] = counters.get(bytes_key, 0.0) + nbytes
        counters[ops_key] = counters.get(ops_key, 0.0) + 1

    def count(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def take(self) -> tuple[float, list[TransferCharge]]:
        """Return and clear the per-operation charges (counters persist)."""
        ns, self.ns = self.ns, 0.0
        self.taken_ns += ns
        transfers, self.transfers = self.transfers, []
        return ns, transfers

    def reset(self) -> None:
        self.ns = 0.0
        self.transfers = []
        self.counters = {}
        self.taken_ns = 0.0


@dataclass(frozen=True)
class MemoryTiming:
    """Latency parameters for one interconnect path to a region."""

    miss_ns: float  # one cache line fetched from the device
    hit_ns: float  # line already in the CPU cache hierarchy
    read_burst_base_ns: float  # fixed cost of a bulk (streamed) read
    read_burst_ns_per_byte: float
    write_burst_base_ns: float  # fixed cost of a bulk (streamed) write
    write_burst_ns_per_byte: float
    pipe_key: Optional[str] = None  # bandwidth pipe charged per byte moved
    pipe_base_ns: float = 0.0

    # Bulk accesses at or above this size use the burst model and bypass
    # the line cache (non-temporal/streaming semantics).
    burst_threshold: int = 256


class MappedMemory:
    """A metered, cache-modelled window onto a :class:`MemoryRegion`.

    Small accesses go through the per-line timing cache (hits are nearly
    free, misses fetch whole lines over the interconnect); accesses at or
    above ``timing.burst_threshold`` use the streamed burst model and
    move every byte. All derived timing constants are precomputed here:
    the burst-latency lines become :class:`~repro.sim.latency.LatencyTable`
    lookups and the per-region counter names become interned strings, so
    the per-access cost is dict probes, not arithmetic and string
    building.

    >>> from repro.hardware.cache import LineCacheModel
    >>> region = MemoryRegion("demo", 4096, volatile=False)
    >>> meter = AccessMeter()
    >>> timing = MemoryTiming(
    ...     miss_ns=100.0, hit_ns=1.0,
    ...     read_burst_base_ns=50.0, read_burst_ns_per_byte=0.1,
    ...     write_burst_base_ns=50.0, write_burst_ns_per_byte=0.1,
    ...     pipe_key="cxl")
    >>> mem = MappedMemory(region, timing, meter, LineCacheModel(1024), "cxl")
    >>> mem.write(0, b"hello")           # cold line: one miss, one line moved
    >>> mem.read(0, 5)                   # warm line: a hit, no link traffic
    b'hello'
    >>> meter.ns                         # miss (100) + hit (1)
    101.0
    >>> (meter.counters["cxl_bytes"], meter.counters["cxl_ops"])
    (64.0, 1.0)
    """

    def __init__(
        self,
        region: MemoryRegion,
        timing: MemoryTiming,
        meter: AccessMeter,
        line_cache: "LineCacheProtocol",
        counter_key: str,
    ) -> None:
        self.region = region
        self.timing = timing
        self.meter = meter
        self.line_cache = line_cache
        self.counter_key = counter_key
        # Hot-path constants (MemoryTiming is frozen; region names and
        # counter keys never change after construction).
        self._region_name = region.name
        self._burst_threshold = timing.burst_threshold
        self._miss_ns = timing.miss_ns
        self._hit_ns = timing.hit_ns
        self._pipe_key = timing.pipe_key
        self._pipe_base_ns = timing.pipe_base_ns
        self._read_table = LatencyTable(
            timing.read_burst_base_ns, timing.read_burst_ns_per_byte
        )
        self._write_table = LatencyTable(
            timing.write_burst_base_ns, timing.write_burst_ns_per_byte
        )
        self._touched_key = counter_key + "_touched_bytes"
        self._span_kind = counter_key + "_access"
        self._trace_burst_key = f"mem.{counter_key}.burst_bytes"
        self._trace_hits_key = f"mem.{counter_key}.line_hits"
        self._trace_misses_key = f"mem.{counter_key}.line_misses"
        self._trace_device_key = f"mem.{counter_key}.device_bytes"
        if timing.pipe_key is not None:
            self._pipe_bytes_key = timing.pipe_key + "_bytes"
            self._pipe_ops_key = timing.pipe_key + "_ops"
            # Single-line misses dominate the charge stream; they are all
            # the same immutable (pipe, 64 B, base) value, so one shared
            # instance replaces an allocation per miss.
            self._line_charge = TransferCharge(
                timing.pipe_key, CACHE_LINE, timing.pipe_base_ns
            )
        else:
            self._pipe_bytes_key = self._pipe_ops_key = None
            self._line_charge = None

    # -- metered access --------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        self._charge(offset, nbytes, write=False)
        return self.region.read(offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self._charge(offset, len(data), write=True)
        self.region.write(offset, data)

    def read_unmetered(self, offset: int, nbytes: int) -> bytes:
        """Functional read with no timing charge (recovery bookkeeping)."""
        return self.region.read(offset, nbytes)

    def write_unmetered(self, offset: int, data: bytes) -> None:
        self.region.write(offset, data)

    # -- cost model -------------------------------------------------------------

    def _charge(self, offset: int, nbytes: int, write: bool) -> None:
        meter = self.meter
        tracer = obs_active()
        if nbytes >= self._burst_threshold:
            table = self._write_table if write else self._read_table
            cache = table._cache
            ns = cache.get(nbytes)
            if ns is None:
                ns = cache[nbytes] = table.base_ns + nbytes * table.ns_per_byte
            meter.ns += ns
            device_bytes = nbytes  # streamed: every byte crosses the link
            if tracer is not None:
                tracer.count(self._trace_burst_key, nbytes)
        else:
            first_line = offset // CACHE_LINE
            last_line = (offset + nbytes - 1) // CACHE_LINE if nbytes > 1 else first_line
            hits, misses = self.line_cache.touch_range(
                self._region_name, first_line, last_line
            )
            ns = misses * self._miss_ns + hits * self._hit_ns
            meter.ns += ns
            # Only cache misses generate device/link traffic, at line
            # granularity — a hot B-tree root costs the CXL link nothing.
            device_bytes = misses * CACHE_LINE
            if tracer is not None:
                if hits:
                    tracer.count(self._trace_hits_key, hits)
                if misses:
                    tracer.count(self._trace_misses_key, misses)
        spans = spans_active()
        if spans is not None:
            spans.add_ns(self._span_kind, ns)
        counters = meter.counters
        key = self._touched_key
        counters[key] = counters.get(key, 0.0) + nbytes
        if device_bytes:
            if tracer is not None:
                tracer.count(self._trace_device_key, device_bytes)
            pipe_key = self._pipe_key
            if pipe_key is not None:
                # Inlined AccessMeter.charge_transfer with precomputed
                # counter keys — this runs once per device transfer.
                if device_bytes == CACHE_LINE:
                    meter.transfers.append(self._line_charge)
                else:
                    meter.transfers.append(
                        TransferCharge(pipe_key, device_bytes, self._pipe_base_ns)
                    )
                key = self._pipe_bytes_key
                counters[key] = counters.get(key, 0.0) + device_bytes
                key = self._pipe_ops_key
                counters[key] = counters.get(key, 0.0) + 1


class WindowedMemory:
    """A sub-range of a mapped memory, addressed from zero.

    Used for CXL extents: the memory manager hands a tenant an offset
    into the shared pool, and the tenant addresses its extent relative
    to that offset (what ``mmap`` of the dax device at an offset gives).
    """

    __slots__ = ("mapped", "base", "size")

    def __init__(self, mapped: MappedMemory, base: int, size: int) -> None:
        if base < 0 or base + size > mapped.region.size:
            raise IndexError("window outside the mapped region")
        self.mapped = mapped
        self.base = base
        self.size = size

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside window of "
                f"size {self.size}"
            )

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return self.mapped.read(self.base + offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.mapped.write(self.base + offset, data)

    def read_unmetered(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return self.mapped.read_unmetered(self.base + offset, nbytes)

    def write_unmetered(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.mapped.write_unmetered(self.base + offset, data)


class LineCacheProtocol:
    """Interface for the timing-only CPU cache model."""

    def touch(self, region_name: str, line: int) -> bool:  # pragma: no cover
        raise NotImplementedError

    def touch_range(
        self, region_name: str, first_line: int, last_line: int
    ) -> tuple[int, int]:
        """Touch ``first_line..last_line`` inclusive; return (hits, misses).

        Default implementation probes line by line via :meth:`touch`, so
        custom timing caches only need to override ``touch``; the
        concrete :class:`~repro.hardware.cache.LineCacheModel` overrides
        this with a coalesced probe.
        """
        hits = 0
        touch = self.touch
        for line in range(first_line, last_line + 1):
            if touch(region_name, line):
                hits += 1
        return hits, (last_line - first_line + 1) - hits

    def drop_region(self, region_name: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def drop_lines(
        self, region_name: str, first_line: int, last_line: int
    ) -> None:  # pragma: no cover
        raise NotImplementedError

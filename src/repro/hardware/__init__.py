"""Simulated hardware: memory, CPU caches, CXL fabric, RDMA NICs, hosts."""

from .cache import CpuCache, LineCacheModel
from .cxl import CxlFabric, CxlMemoryDevice, CxlSwitch
from .host import Cluster, Host, cxl_timing, dram_timing
from .memory import (
    AccessMeter,
    MappedMemory,
    MemoryRegion,
    MemoryTiming,
    PoisonedMemoryError,
    TransferCharge,
    WindowedMemory,
)
from .rdma import RdmaNic

__all__ = [
    "CpuCache",
    "LineCacheModel",
    "CxlFabric",
    "CxlMemoryDevice",
    "CxlSwitch",
    "Cluster",
    "Host",
    "cxl_timing",
    "dram_timing",
    "AccessMeter",
    "MappedMemory",
    "MemoryRegion",
    "MemoryTiming",
    "PoisonedMemoryError",
    "TransferCharge",
    "WindowedMemory",
    "RdmaNic",
]

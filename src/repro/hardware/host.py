"""Hosts and cluster topology.

A :class:`Host` is one physical machine: volatile DRAM, an RDMA NIC, a
CXL link onto the fabric, plus pipes for storage, WAL-device, and client
network traffic. A :class:`Cluster` wires hosts to a shared
:class:`~repro.hardware.cxl.CxlFabric` and to remote-memory nodes used by
the RDMA baselines.

Crash semantics live here: ``host.crash()`` poisons every DRAM region on
the host. CXL pool contents (owned by the fabric) and remote-memory
regions (owned by other hosts) survive, exactly as in the paper's
fault model.
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Simulator
from ..sim.latency import LatencyConfig
from ..sim.resources import Pipe
from .cache import LineCacheModel
from .cxl import CxlFabric
from .memory import AccessMeter, MappedMemory, MemoryRegion, MemoryTiming
from .rdma import RdmaNic

__all__ = ["Host", "Cluster", "LLC_HIT_NS"]

# Latency of an access that hits in the CPU cache hierarchy.
LLC_HIT_NS = 18.0


def dram_timing(config: LatencyConfig, remote_numa: bool = False) -> MemoryTiming:
    """Local-socket (or cross-socket) DRAM timing."""
    miss = config.dram_remote_ns if remote_numa else config.dram_local_ns
    return MemoryTiming(
        miss_ns=miss,
        hit_ns=LLC_HIT_NS,
        read_burst_base_ns=miss,
        read_burst_ns_per_byte=config.dram_copy_ns_per_byte,
        write_burst_base_ns=miss,
        write_burst_ns_per_byte=config.dram_copy_ns_per_byte,
        pipe_key=None,
    )


def cxl_timing(
    config: LatencyConfig,
    remote_numa: bool = False,
    through_switch: bool = True,
) -> MemoryTiming:
    """Switch-attached (or direct-attached) CXL memory timing."""
    if through_switch:
        miss = config.cxl_switch_remote_ns if remote_numa else config.cxl_switch_local_ns
    else:
        miss = config.cxl_direct_remote_ns if remote_numa else config.cxl_direct_local_ns
    return MemoryTiming(
        miss_ns=miss,
        hit_ns=LLC_HIT_NS,
        read_burst_base_ns=config.cxl_read_base_ns,
        read_burst_ns_per_byte=config.cxl_read_ns_per_byte,
        write_burst_base_ns=config.cxl_write_base_ns,
        write_burst_ns_per_byte=config.cxl_write_ns_per_byte,
        pipe_key="cxl" if through_switch else None,
    )


class Host:
    """One physical machine in the cluster."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[LatencyConfig] = None,
        fabric: Optional[CxlFabric] = None,
        with_rdma: bool = True,
        vcpus: int = 192,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config or LatencyConfig()
        self.fabric = fabric
        self.vcpus = vcpus
        self.nic: Optional[RdmaNic] = (
            RdmaNic(sim, f"{name}.nic", self.config) if with_rdma else None
        )
        self.storage_pipe = Pipe(
            sim, self.config.storage_bandwidth, name=f"{name}.storage"
        )
        self.wal_pipe = Pipe(
            sim, self.config.wal_device_bandwidth, name=f"{name}.wal"
        )
        self.client_pipe = Pipe(
            sim, self.config.client_network_bandwidth, name=f"{name}.client"
        )
        self.dram_regions: list[MemoryRegion] = []
        self.caches: list = []  # CPU caches whose contents die with the host
        self._dram_counter = 0
        self.pipes: dict[str, list[Pipe]] = {
            "storage": [self.storage_pipe],
            "wal": [self.wal_pipe],
            "client": [self.client_pipe],
        }
        if self.nic is not None:
            self.pipes["rdma"] = [self.nic.data_pipe]
            self.pipes["rdma_ops"] = [self.nic.ops_pipe]
        if fabric is not None:
            self.pipes["cxl"] = [fabric.host_link(name), fabric.switch.pipe]

    # -- memory ------------------------------------------------------------------

    def alloc_dram(self, name: str, size: int) -> MemoryRegion:
        """Allocate a volatile DRAM region on this host."""
        self._dram_counter += 1
        region = MemoryRegion(
            f"{self.name}.dram.{name}.{self._dram_counter}", size, volatile=True
        )
        self.dram_regions.append(region)
        return region

    def map_dram(
        self,
        region: MemoryRegion,
        meter: AccessMeter,
        line_cache: LineCacheModel,
        remote_numa: bool = False,
    ) -> MappedMemory:
        self.register_cache(line_cache)
        return MappedMemory(
            region,
            dram_timing(self.config, remote_numa),
            meter,
            line_cache,
            counter_key="dram",
        )

    def map_cxl(
        self,
        region: MemoryRegion,
        meter: AccessMeter,
        line_cache: LineCacheModel,
        remote_numa: bool = False,
        through_switch: bool = True,
    ) -> MappedMemory:
        self.register_cache(line_cache)
        return MappedMemory(
            region,
            cxl_timing(self.config, remote_numa, through_switch),
            meter,
            line_cache,
            counter_key="cxl",
        )

    def register_cache(self, cache) -> None:
        """Track a CPU cache (timing or functional) living on this host.

        SRAM does not survive power loss: :meth:`crash` must drop every
        cached line, or a restarted host would warm-hit lines it never
        re-fetched — and a functional :class:`~repro.hardware.cache.CpuCache`
        would resurrect dirty data that was never written back.
        """
        if all(cache is not existing for existing in self.caches):
            self.caches.append(cache)

    # -- fault injection -----------------------------------------------------------

    def crash(self) -> None:
        """Power-fail the host: DRAM poisoned, every CPU cache dropped."""
        for region in self.dram_regions:
            region.power_fail()
        for cache in self.caches:
            if hasattr(cache, "drop_all"):
                cache.drop_all()  # functional: dirty lines die unwritten
            else:
                cache.clear()  # timing-only: no warm hits after restart

    def restart(self) -> None:
        """Bring the host back with zeroed DRAM and cold caches."""
        for region in self.dram_regions:
            region.power_restore()


class Cluster:
    """Hosts + one or more CXL fabrics + remote-memory nodes.

    The paper's rack (Fig. 5) houses two switch-backed memory pools;
    :meth:`add_fabric` models additional independent pools, each with
    its own switch, capacity and host links.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[LatencyConfig] = None,
        with_fabric: bool = True,
        switch_ports: int = 32,
    ) -> None:
        self.sim = sim
        self.config = config or LatencyConfig()
        self.switch_ports = switch_ports
        self.fabrics: list[CxlFabric] = []
        if with_fabric:
            self.fabrics.append(
                CxlFabric(
                    sim, "cxl0", config=self.config, max_ports=switch_ports
                )
            )
        self.hosts: dict[str, Host] = {}
        self._remote_regions: dict[str, MemoryRegion] = {}

    @property
    def fabric(self) -> Optional[CxlFabric]:
        """The first (default) pool; None if the cluster has no fabric."""
        return self.fabrics[0] if self.fabrics else None

    def add_fabric(self, name: Optional[str] = None) -> CxlFabric:
        """Add another independent switch + memory-box pool."""
        fabric = CxlFabric(
            self.sim,
            name or f"cxl{len(self.fabrics)}",
            config=self.config,
            max_ports=self.switch_ports,
        )
        self.fabrics.append(fabric)
        return fabric

    def add_host(
        self,
        name: str,
        with_rdma: bool = True,
        vcpus: int = 192,
        fabric: Optional[CxlFabric] = None,
    ) -> Host:
        """Add a host, attached to ``fabric`` (default: the first pool)."""
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(
            self.sim,
            name,
            config=self.config,
            fabric=fabric or self.fabric,
            with_rdma=with_rdma,
            vcpus=vcpus,
        )
        self.hosts[name] = host
        return host

    def alloc_remote_memory(self, name: str, size: int) -> MemoryRegion:
        """Memory on a dedicated memory node, reached over RDMA.

        Non-volatile with respect to *compute host* crashes: the memory
        node keeps running, which is why RDMA-based recovery can fetch
        pages from disaggregated memory (§2.2 item 2).
        """
        if name in self._remote_regions:
            raise ValueError(f"duplicate remote memory region {name!r}")
        region = MemoryRegion(f"memnode.{name}", size, volatile=False)
        self._remote_regions[name] = region
        return region

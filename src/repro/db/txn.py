"""User transactions: redo at commit, before-image undo at rollback.

A transaction groups operations (each its own mini-transaction) and
makes their redo durable at commit via a group log flush. Rollback
applies the collected before-images in reverse — as *new, redo-logged*
compensation writes, so an aborted transaction is durably undone and
recovery never resurrects it. This matches the paper's engine, where
"the rollback of uncommitted transactions can occur simultaneously with
application requests" (§3.2); crash-interrupted transactions are
instead discarded by redo recovery (their log never became durable).

Rollback is a single-primary facility: byte-wise undo assumes no other
node wrote the same pages in between, which the multi-primary page
locks do not guarantee across operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.spans import active as spans_active
from .mtr import MiniTransaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

__all__ = ["Transaction"]


class Transaction:
    """One unit of work; redo becomes durable at commit."""

    _next_id = 1

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.txn_id = Transaction._next_id
        Transaction._next_id += 1
        self._committed = False
        self._rolled_back = False
        self._undo: list[tuple[int, int, bytes]] = []
        spans = spans_active()
        if spans is not None:
            self._span = spans.begin(
                "txn", "transaction", meter=engine.meter, txn_id=self.txn_id
            )
            self._span_tracer = spans
        else:
            self._span = None
            self._span_tracer = None
        engine.meter.charge_ns(engine.cost.txn_fixed_ns / 2)

    def mtr(self) -> MiniTransaction:
        """Start a mini-transaction for one or more page operations."""
        self._check_open()
        return MiniTransaction(self.engine, txn=self)

    def _absorb_undo(self, undo: list[tuple[int, int, bytes]]) -> None:
        self._undo.extend(undo)

    def commit(self) -> None:
        """Group-flush the log buffer: everything staged becomes durable."""
        self._check_open()
        self._committed = True
        self._undo = []
        self.engine.redo_log.flush()
        self.engine.meter.charge_ns(self.engine.cost.txn_fixed_ns / 2)
        if self._span is not None:
            self._span_tracer.end(self._span)

    def rollback(self) -> int:
        """Undo every committed mini-transaction of this transaction.

        Before-images apply in reverse order through a fresh, redo-
        logged mini-transaction (compensation), then the log flushes so
        the abort itself is durable. Returns the number of undo records
        applied.
        """
        self._check_open()
        self._rolled_back = True
        applied = 0
        pending = list(reversed(self._undo))
        # Chunked so the compensation never pins more frames than a
        # small local buffer pool holds.
        chunk_records = 8
        while pending:
            chunk, pending = pending[:chunk_records], pending[chunk_records:]
            mtr = MiniTransaction(self.engine)
            for page_id, offset, before in chunk:
                view = mtr.get_page(page_id, for_write=True)
                mtr.write(view, offset, before)
                applied += 1
            mtr.commit()
        self._undo = []
        self.engine.redo_log.flush()
        self.engine.meter.charge_ns(self.engine.cost.txn_fixed_ns / 2)
        if self._span is not None:
            self._span_tracer.end(self._span, rolled_back=True)
        return applied

    @property
    def committed(self) -> bool:
        return self._committed

    @property
    def rolled_back(self) -> bool:
        return self._rolled_back

    def _check_open(self) -> None:
        if self._committed:
            raise RuntimeError("transaction already committed")
        if self._rolled_back:
            raise RuntimeError("transaction already rolled back")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._committed or self._rolled_back:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

"""The single-node database engine.

Binds a buffer pool (local DRAM, tiered RDMA, or PolarCXLMem — the
engine neither knows nor cares), a durable page store, the redo log, a
cost model and a meter into one transactional engine with tables.

Crash semantics: :meth:`crash` poisons the engine's volatile memory
regions and drops the unflushed log buffer, after which the object is
dead. Recovery constructs a *new* engine over the surviving state via
one of the recovery managers (:mod:`repro.core.recovery` /
:mod:`repro.baselines.vanilla_recovery` /
:mod:`repro.baselines.rdma_recovery`), then :meth:`adopt_schema`
re-declares the tables (schema is code, as in any real deployment).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hardware.memory import AccessMeter, MemoryRegion
from ..obs.spans import active as spans_active
from ..sim.latency import CostModel
from ..storage.checkpoint import Checkpointer
from ..storage.pagestore import PageStore
from ..storage.wal import RedoLog
from .bufferpool import BufferPool
from .constants import (
    META_MAX_TREES,
    META_OFF_FREE_PAGE_HEAD,
    META_OFF_NEXT_PAGE_ID,
    META_OFF_TREE_ROOTS,
    META_PAGE_ID,
    OFF_NEXT_LEAF,
    OFF_PAGE_TYPE,
    PT_FREE,
    PT_META,
)
from .mtr import MiniTransaction
from .record import RecordCodec
from .table import Table
from .txn import Transaction

__all__ = ["Engine", "EngineCrashedError"]


class EngineCrashedError(RuntimeError):
    """The engine was used after :meth:`Engine.crash`."""


class Engine:
    """A mini PolarDB-like transactional engine over pluggable memory."""

    def __init__(
        self,
        name: str,
        buffer_pool: BufferPool,
        page_store: PageStore,
        redo_log: RedoLog,
        meter: AccessMeter,
        cost: Optional[CostModel] = None,
        volatile_regions: Sequence[MemoryRegion] = (),
    ) -> None:
        self.name = name
        self.buffer_pool = buffer_pool
        self.page_store = page_store
        self.redo_log = redo_log
        self.meter = meter
        self.cost = cost or CostModel()
        self.volatile_regions = list(volatile_regions)
        self.tables: dict[str, Table] = {}
        self._next_tree_slot = 0
        self.latched_pages: set[int] = set()
        buffer_pool.attach_redo_log(redo_log)
        self.checkpointer = Checkpointer(redo_log, buffer_pool)
        self._crashed = False

    # -- bootstrap -------------------------------------------------------------------

    def initialize(self) -> None:
        """Format a brand-new database: meta page 0, durable baseline."""
        view = self.buffer_pool.new_page(META_PAGE_ID, PT_META)
        view.write_u64(META_OFF_NEXT_PAGE_ID, 1)
        self.buffer_pool.mark_dirty(META_PAGE_ID)
        self.buffer_pool.flush_page(META_PAGE_ID)
        self.buffer_pool.unpin(META_PAGE_ID)

    def create_table(
        self,
        name: str,
        codec: RecordCodec,
        index_fields: Sequence[str] = (),
    ) -> Table:
        """Create a table, its primary index, and any secondary indexes."""
        self._check_alive()
        if name in self.tables:
            raise ValueError(f"table {name!r} exists")
        table = self._declare_table(name, codec, index_fields)
        mtr = self.mtr()
        table.create(mtr)
        mtr.commit()
        self.redo_log.flush()
        return table

    def adopt_schema(self, schema: Sequence[tuple]) -> None:
        """Re-declare tables after recovery, in original creation order.

        Entries are ``(name, codec)`` or ``(name, codec, index_fields)``.
        Tree-root page ids come from the recovered meta page, so the
        slot assignment (creation order, PK tree then indexes) must
        match — exactly like reopening any database with its schema
        catalogue.
        """
        self._check_alive()
        for entry in schema:
            name, codec = entry[0], entry[1]
            index_fields = entry[2] if len(entry) > 2 else ()
            self._declare_table(name, codec, index_fields)

    def _declare_table(
        self, name: str, codec: RecordCodec, index_fields: Sequence[str] = ()
    ) -> Table:
        slots_needed = 1 + len(index_fields)
        if self._next_tree_slot + slots_needed > META_MAX_TREES:
            raise RuntimeError("out of tree slots in the meta page")
        pk_slot = self._next_tree_slot
        index_slots = range(pk_slot + 1, pk_slot + slots_needed)
        table = Table(
            self,
            name,
            codec,
            pk_slot,
            index_fields=index_fields,
            index_slots=index_slots,
        )
        self._next_tree_slot += slots_needed
        self.tables[name] = table
        return table

    # -- meta-page services used by the B-tree ------------------------------------------

    def allocate_page_id(self, mtr: MiniTransaction) -> int:
        """Pop the freed-page list, or extend the page-id space."""
        meta = mtr.get_page(META_PAGE_ID, for_write=True)
        free_head = meta.read_u64(META_OFF_FREE_PAGE_HEAD)
        if free_head != 0:
            freed = mtr.get_page(free_head, for_write=True)
            mtr.write_u64(meta, META_OFF_FREE_PAGE_HEAD, freed.next_leaf)
            return free_head
        page_id = meta.read_u64(META_OFF_NEXT_PAGE_ID)
        mtr.write_u64(meta, META_OFF_NEXT_PAGE_ID, page_id + 1)
        return page_id

    def free_page(self, mtr: MiniTransaction, view) -> None:
        """Return a page to the freed-page list (merge SMOs).

        The page is marked free and chained through its ``next_leaf``
        field; its buffer-pool frame stays resident until evicted.
        """
        meta = mtr.get_page(META_PAGE_ID, for_write=True)
        mtr.latch_write(view)
        head = meta.read_u64(META_OFF_FREE_PAGE_HEAD)
        mtr.write(view, OFF_PAGE_TYPE, bytes([PT_FREE]))
        mtr.write_u64(view, OFF_NEXT_LEAF, head)
        mtr.write_u64(meta, META_OFF_FREE_PAGE_HEAD, view.page_id)

    def get_tree_root(self, tree_slot: int) -> int:
        mtr = self.mtr()
        meta = mtr.get_page(META_PAGE_ID)
        root = meta.read_u64(META_OFF_TREE_ROOTS + tree_slot * 8)
        mtr.commit()
        if root == 0:
            raise RuntimeError(f"tree slot {tree_slot} has no root")
        return root

    def set_tree_root(
        self, mtr: MiniTransaction, tree_slot: int, page_id: int
    ) -> None:
        meta = mtr.get_page(META_PAGE_ID, for_write=True)
        mtr.write_u64(meta, META_OFF_TREE_ROOTS + tree_slot * 8, page_id)

    # -- work ------------------------------------------------------------------------------

    def begin(self) -> Transaction:
        self._check_alive()
        return Transaction(self)

    def mtr(self) -> MiniTransaction:
        self._check_alive()
        return MiniTransaction(self)

    def checkpoint(self) -> int:
        """Flush dirty pages and advance the checkpoint LSN."""
        self._check_alive()
        spans = spans_active()
        if spans is None:
            return self.checkpointer.checkpoint()
        span = spans.begin("pagestore_io", "checkpoint", meter=self.meter)
        flushed = self.checkpointer.checkpoint()
        spans.end(span, pages=flushed)
        return flushed

    # -- crash ------------------------------------------------------------------------------

    def crash(self) -> int:
        """Kill the engine: volatile memory poisoned, log buffer dropped.

        Returns the number of redo records that were lost.
        """
        self._crashed = True
        lost = self.redo_log.crash()
        for region in self.volatile_regions:
            region.power_fail()
        return lost

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_alive(self) -> None:
        if self._crashed:
            raise EngineCrashedError(f"engine {self.name!r} has crashed")

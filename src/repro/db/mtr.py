"""Mini-transactions: atomic multi-page modifications with redo logging.

Every page access in the engine happens inside a mini-transaction (mtr),
InnoDB-style. An mtr:

* pins every page it touches and releases the pins on commit,
* takes write latches under two-phase locking — latches are only
  released at commit, so a crash mid-mtr leaves the pages' persisted
  lock state set (the signal PolarRecv uses to spot partial updates,
  §3.2),
* turns every modification into a physical redo record, stamps the
  page's LSN, and marks the page dirty.

Redo records are staged inside the mtr and appended to the log buffer
*atomically at commit*, so a log flush can never persist half an SMO:
either every record of a committed mtr can become durable, or none of
an uncommitted one can.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from ..faults.injector import crash_point
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from .bufferpool import BufferPool
from .constants import PAGE_HEADER_SIZE
from .page import format_empty_page
from .page import PageView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

__all__ = ["MiniTransaction", "MtrStateError"]


class MtrStateError(RuntimeError):
    """An mtr was used after commit, or misused."""


class MiniTransaction:
    """One atomic unit of physical page changes."""

    def __init__(self, engine: "Engine", txn=None) -> None:
        self.engine = engine
        self.txn = txn
        self._pins: list[tuple[BufferPool, int]] = []
        self._write_latched: list[tuple[BufferPool, int]] = []
        self._staged: list[tuple[int, int, bytes]] = []  # (page_id, offset, data)
        self._undo: list[tuple[int, int, bytes]] = []  # before-images
        self._touched_views: list[PageView] = []
        self._committed = False
        spans = spans_active()
        if spans is not None:
            self._span = spans.begin("mtr", "mtr", meter=engine.meter)
            self._span_tracer = spans
        else:
            self._span = None
            self._span_tracer = None

    # -- page access -----------------------------------------------------------------

    def get_page(self, page_id: int, for_write: bool = False) -> PageView:
        """Pin (and optionally write-latch) a page through the pool."""
        self._check_active()
        pool = self.engine.buffer_pool
        view = pool.get_page(page_id)
        self._pins.append((pool, page_id))
        if for_write:
            self._write_latch(pool, page_id)
        return view

    def new_page(self, page_type: int, level: int = 0) -> PageView:
        """Allocate a page id and create the page, write-latched.

        The fresh header is redo-logged so recovery can rebuild a
        never-flushed page from a zeroed image plus its redo stream.
        A page id reclaimed from the freed-page list may still be
        resident (a merge freed it); its frame is reformatted in place —
        the logged header makes the page logically empty, so any stale
        body bytes are unreachable.
        """
        self._check_active()
        page_id = self.engine.allocate_page_id(self)
        pool = self.engine.buffer_pool
        if pool.contains(page_id):
            view = pool.get_page(page_id)
            self._pins.append((pool, page_id))
            self._write_latch(pool, page_id)
            view.write(0, format_empty_page(page_id, page_type, level))
        else:
            view = pool.new_page(page_id, page_type, level)
            self._pins.append((pool, page_id))
            self._write_latch(pool, page_id)
        self.write(view, 0, view.read(0, PAGE_HEADER_SIZE))
        return view

    def latch_write(self, view: PageView) -> None:
        """Write-latch a page already pinned by this mtr."""
        self._check_active()
        self._write_latch(view.pool, view.page_id)

    def write(self, view: PageView, offset: int, data: bytes) -> None:
        """Modify a page: apply bytes, stage redo, stamp LSN, mark dirty.

        The LSN stamped on the page is assigned now (reserved from the
        log's counter) but the record only reaches the log buffer at
        commit, preserving mtr atomicity with respect to flushes. When
        the mtr belongs to a transaction, a before-image is captured so
        the transaction can roll back (§3.2: rollback of uncommitted
        transactions runs concurrently with new requests).
        """
        self._check_active()
        if self.txn is not None:
            self._undo.append((view.page_id, offset, view.read(offset, len(data))))
        view.write(offset, bytes(data))
        # Crash here: page bytes changed, redo not yet staged, write
        # latch held — the persisted lock_state is PolarRecv's signal.
        crash_point("mtr.write.applied")
        self._staged.append((view.page_id, offset, bytes(data)))
        self._touched_views.append(view)
        self.engine.meter.charge_ns(self.engine.cost.log_record_ns)

    def write_u64(self, view: PageView, offset: int, value: int) -> None:
        self.write(view, offset, struct.pack("<Q", value))

    def write_u16(self, view: PageView, offset: int, value: int) -> None:
        self.write(view, offset, struct.pack("<H", value))

    # -- lifecycle ----------------------------------------------------------------------

    def commit(self) -> None:
        """Publish staged redo, stamp LSNs, release latches and pins."""
        self._check_active()
        self._committed = True
        # Crash here: all modifications applied, nothing in the log
        # buffer, every latch still held.
        crash_point("mtr.commit.begin")
        redo_log = self.engine.redo_log
        last_lsn_of: dict[int, int] = {}
        for page_id, offset, data in self._staged:
            lsn = redo_log.append(page_id, offset, data)
            last_lsn_of[page_id] = lsn
        # Crash here: records sit in the volatile log buffer (lost with
        # the host), latches still held.
        crash_point("mtr.commit.staged")
        for view in self._touched_views:
            lsn = last_lsn_of.get(view.page_id)
            if lsn is not None and view.lsn < lsn:
                view.set_lsn(lsn)
                view.pool.mark_dirty(view.page_id)
        # Two-phase: latches drop only now, after the log buffer holds
        # every record of the mtr.
        for latch_pool, page_id in self._write_latched:
            latch_pool.note_write_latch(page_id, held=False)
            self.engine.latched_pages.discard(page_id)
        # Crash here: latches released (lock_state cleared in CXL), page
        # LSNs stamped past the durable maximum — the "too new" signal.
        crash_point("mtr.commit.unlatched")
        for pin_pool, page_id in self._pins:
            pin_pool.unpin(page_id)
        if self.txn is not None and self._undo:
            self.txn._absorb_undo(self._undo)
        tracer = obs_active()
        if tracer is not None:
            tracer.count("mtr.commits")
            if self._staged:
                tracer.count("mtr.records_staged", len(self._staged))
        if self._span is not None:
            self._span_tracer.end(self._span, records=len(self._staged))
        self._staged = []
        self._undo = []
        self._touched_views = []
        self._pins = []
        self._write_latched = []

    @property
    def committed(self) -> bool:
        return self._committed

    @property
    def staged_record_count(self) -> int:
        return len(self._staged)

    # -- internals ------------------------------------------------------------------------

    def _write_latch(self, pool: BufferPool, page_id: int) -> None:
        if (pool, page_id) not in self._write_latched:
            self._write_latched.append((pool, page_id))
            pool.note_write_latch(page_id, held=True)
            self.engine.latched_pages.add(page_id)

    def _check_active(self) -> None:
        if self._committed:
            raise MtrStateError("mini-transaction already committed")

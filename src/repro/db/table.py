"""Tables: a record codec over a B+tree primary-key index, with
optional secondary indexes.

A secondary index on an integer column is itself a B+tree keyed by
``(column value << 32) | primary key`` with the primary key as payload,
so duplicate column values coexist and index scans come back in
(value, pk) order. Index maintenance piggybacks on the row operations
inside the same mini-transaction — an indexed-column update really is a
multi-page operation, as in the engine the paper modifies.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from .btree import BTree
from .mtr import MiniTransaction
from .record import RecordCodec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

__all__ = ["Table", "SecondaryIndex"]

_PK_LIMIT = 1 << 32
_U64 = struct.Struct("<Q")


class SecondaryIndex:
    """An index over one integer column of a table."""

    def __init__(
        self, table: "Table", field: str, tree_slot: int
    ) -> None:
        codec = table.codec
        if codec.field_size(field) > 4:
            raise ValueError(
                f"indexed column {field!r} must be at most 4 bytes "
                "(the composite key packs value and primary key into u64)"
            )
        self.table = table
        self.field = field
        self.btree = BTree(table.engine, tree_slot, payload_size=8)

    def composite_key(self, value: int, pk: int) -> int:
        if not 0 <= pk < _PK_LIMIT:
            raise ValueError(f"primary key {pk} out of indexable range")
        return (int(value) << 32) | pk

    # -- maintenance (same mtr as the row operation) ------------------------------

    def on_insert(self, mtr: MiniTransaction, pk: int, row: Mapping[str, Any]) -> None:
        self.btree.insert(
            mtr, self.composite_key(row[self.field], pk), _U64.pack(pk)
        )

    def on_delete(self, mtr: MiniTransaction, pk: int, row: Mapping[str, Any]) -> None:
        self.btree.delete(mtr, self.composite_key(row[self.field], pk))

    def on_update(
        self, mtr: MiniTransaction, pk: int, old_value: int, new_value: int
    ) -> None:
        if old_value == new_value:
            return
        self.btree.delete(mtr, self.composite_key(old_value, pk))
        self.btree.insert(mtr, self.composite_key(new_value, pk), _U64.pack(pk))

    # -- queries ---------------------------------------------------------------------

    def lookup_pks(
        self, mtr: MiniTransaction, value: int, limit: int = 64
    ) -> list[int]:
        """Primary keys of rows whose column equals ``value``."""
        low = self.composite_key(value, 0)
        out = []
        for key, payload in self.btree.range_scan(mtr, low, limit):
            if (key >> 32) != value:
                break
            out.append(_U64.unpack(payload)[0])
        return out


class Table:
    """A fixed-schema table clustered on a u64 primary key."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        codec: RecordCodec,
        tree_slot: int,
        index_fields: Iterable[str] = (),
        index_slots: Iterable[int] = (),
    ) -> None:
        self.engine = engine
        self.name = name
        self.codec = codec
        self.btree = BTree(engine, tree_slot, codec.record_size)
        self.indexes: dict[str, SecondaryIndex] = {}
        for field, slot in zip(index_fields, index_slots):
            self.indexes[field] = SecondaryIndex(self, field, slot)

    def create(self, mtr: MiniTransaction) -> None:
        self.btree.create(mtr)
        for index in self.indexes.values():
            index.btree.create(mtr)

    # -- row operations ------------------------------------------------------------

    def insert(self, mtr: MiniTransaction, key: int, row: Mapping[str, Any]) -> None:
        self.btree.insert(mtr, key, self.codec.encode(row))
        for index in self.indexes.values():
            index.on_insert(mtr, key, row)

    def insert_payload(self, mtr: MiniTransaction, key: int, payload: bytes) -> None:
        self.btree.insert(mtr, key, payload)
        if self.indexes:
            row = self.codec.decode(payload)
            for index in self.indexes.values():
                index.on_insert(mtr, key, row)

    def get(self, mtr: MiniTransaction, key: int) -> Optional[dict[str, Any]]:
        payload = self.btree.lookup(mtr, key)
        if payload is None:
            return None
        return self.codec.decode(payload)

    def get_payload(self, mtr: MiniTransaction, key: int) -> Optional[bytes]:
        return self.btree.lookup(mtr, key)

    def update_field(
        self, mtr: MiniTransaction, key: int, field: str, value: Any
    ) -> bool:
        """Partial update of one column — a small, cache-line-friendly write.

        Updating an indexed column additionally moves the index entry
        (sysbench's ``update_index`` vs ``update_non_index`` cost gap).
        """
        index = self.indexes.get(field)
        if index is not None:
            old = self.get(mtr, key)
            if old is None:
                return False
            data = self.codec.encode_field(field, value)
            if not self.btree.update(
                mtr, key, data, field_offset=self.codec.field_offset(field)
            ):
                return False
            index.on_update(mtr, key, old[field], int(value))
            return True
        data = self.codec.encode_field(field, value)
        return self.btree.update(
            mtr, key, data, field_offset=self.codec.field_offset(field)
        )

    def update_row(
        self, mtr: MiniTransaction, key: int, row: Mapping[str, Any]
    ) -> bool:
        old = self.get(mtr, key) if self.indexes else None
        if not self.btree.update(mtr, key, self.codec.encode(row)):
            return False
        if old is not None:
            for field, index in self.indexes.items():
                index.on_update(mtr, key, old[field], int(row[field]))
        return True

    def delete(self, mtr: MiniTransaction, key: int) -> bool:
        old = self.get(mtr, key) if self.indexes else None
        if not self.btree.delete(mtr, key):
            return False
        if old is not None:
            for index in self.indexes.values():
                index.on_delete(mtr, key, old)
        return True

    def find_by(
        self, mtr: MiniTransaction, field: str, value: int, limit: int = 64
    ) -> list[dict[str, Any]]:
        """Rows with ``row[field] == value``, via the secondary index."""
        index = self.indexes.get(field)
        if index is None:
            raise KeyError(f"no index on {self.name}.{field}")
        rows = []
        for pk in index.lookup_pks(mtr, int(value), limit):
            row = self.get(mtr, pk)
            if row is not None:
                rows.append(row)
        return rows

    def range(
        self, mtr: MiniTransaction, start_key: int, count: int
    ) -> list[dict[str, Any]]:
        return [
            self.codec.decode(payload)
            for _, payload in self.btree.range_scan(mtr, start_key, count)
        ]

    def range_payloads(
        self, mtr: MiniTransaction, start_key: int, count: int
    ) -> list[tuple[int, bytes]]:
        return self.btree.range_scan(mtr, start_key, count)

    @property
    def record_size(self) -> int:
        return self.codec.record_size

"""Fixed-width record codecs.

Tables declare a schema of fixed-width fields (unsigned ints and padded
byte strings), which encodes each row to a constant payload size — the
property the leaf-page layout relies on. Field offsets are exposed so
workloads can perform *partial* updates (e.g. sysbench's non-index
update touches one column), which is what makes cache-line-granular
synchronization in the sharing protocol pay off.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = ["Field", "RecordCodec"]

_INT_FORMATS = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


@dataclass(frozen=True)
class Field:
    """One fixed-width column: an unsigned int or a padded byte string."""

    name: str
    size: int
    kind: str = "int"  # "int" (1/2/4/8 bytes) or "bytes" (any width)

    def __post_init__(self) -> None:
        if self.kind == "int" and self.size not in _INT_FORMATS:
            raise ValueError(f"int field {self.name!r} must be 1/2/4/8 bytes")
        if self.kind not in ("int", "bytes"):
            raise ValueError(f"unknown field kind {self.kind!r}")
        if self.size <= 0:
            raise ValueError(f"field {self.name!r} must have positive size")


class RecordCodec:
    """Encode/decode rows of a fixed schema; expose per-field offsets."""

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise ValueError("schema needs at least one field")
        names = [field.name for field in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self.fields = tuple(fields)
        self._offsets: dict[str, tuple[int, Field]] = {}
        offset = 0
        for field in fields:
            self._offsets[field.name] = (offset, field)
            offset += field.size
        self.record_size = offset

    def encode(self, row: Mapping[str, Any]) -> bytes:
        """Pack a row dict into its fixed-width payload."""
        out = bytearray(self.record_size)
        for field in self.fields:
            offset, _ = self._offsets[field.name]
            value = row[field.name]
            if field.kind == "int":
                struct.pack_into(_INT_FORMATS[field.size], out, offset, value)
            else:
                data = bytes(value)[: field.size]
                out[offset : offset + len(data)] = data
        return bytes(out)

    def decode(self, payload: bytes) -> dict[str, Any]:
        """Unpack a payload into a row dict (byte fields keep padding)."""
        if len(payload) != self.record_size:
            raise ValueError(
                f"payload is {len(payload)} bytes, schema needs {self.record_size}"
            )
        row: dict[str, Any] = {}
        for field in self.fields:
            offset, _ = self._offsets[field.name]
            if field.kind == "int":
                row[field.name] = struct.unpack_from(
                    _INT_FORMATS[field.size], payload, offset
                )[0]
            else:
                row[field.name] = payload[offset : offset + field.size]
        return row

    def field_offset(self, name: str) -> int:
        """Byte offset of a field within the payload (partial updates)."""
        return self._offsets[name][0]

    def field_size(self, name: str) -> int:
        return self._offsets[name][1].size

    def encode_field(self, name: str, value: Any) -> bytes:
        """Encode a single field's bytes (for partial updates)."""
        _, field = self._offsets[name]
        if field.kind == "int":
            return struct.pack(_INT_FORMATS[field.size], value)
        data = bytes(value)[: field.size]
        return data + b"\x00" * (field.size - len(data))

"""A B+tree over buffer-pool pages, with mini-transaction-protected SMOs.

Keys are u64; payloads are fixed-width per tree. Leaves use the
slot-directory layout described in :mod:`repro.db.constants`; internal
nodes hold a sorted array of (separator key, child page id) pairs where
``child[i]`` covers keys in ``[key[i], key[i+1])`` and ``key[0]`` is
treated as minus infinity.

Structure-modification operations — page splits, root growth, leaf and
internal merges, root collapse — run inside the caller's
mini-transaction: every page they touch is write-latched under
two-phase locking and every byte they change is redo-logged, so a crash
at any point either replays to the complete SMO (its mtr's records were
flushed) or leaves the persisted lock state set so PolarRecv rebuilds
the affected pages from durable state (§3.2 explicitly covers crashes
during "page splitting or merging").

Deletion policy: a leaf under a quarter full merges into an adjacent
sibling when the combined records fit one page; underfull internal
nodes merge likewise, and a single-child root collapses. Freed pages go
onto the meta page's freed-page list and are reused by later
allocations.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterator, Optional

from .constants import (
    INTERNAL_ENTRY_BYTES,
    INTERNAL_FANOUT,
    KEY_BYTES,
    NO_FREE_SLOT,
    OFF_FIRST_FREE,
    OFF_HEAP_COUNT,
    OFF_NEXT_LEAF,
    OFF_NRECS,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    PT_INTERNAL,
    PT_LEAF,
    SLOT_BYTES,
    leaf_capacity,
)
from .mtr import MiniTransaction
from .page import PageView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine

__all__ = ["BTree", "DuplicateKeyError", "BTreeCorruptionError"]

_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_ENTRY = struct.Struct("<QQ")


class DuplicateKeyError(KeyError):
    """Insert of a key that already exists."""


class BTreeCorruptionError(RuntimeError):
    """An invariant check failed."""


class BTree:
    """One index: a B+tree rooted at a meta-page slot."""

    def __init__(self, engine: "Engine", tree_slot: int, payload_size: int) -> None:
        self.engine = engine
        self.tree_slot = tree_slot
        self.payload_size = payload_size
        self.record_size = KEY_BYTES + payload_size
        self.capacity = leaf_capacity(payload_size)
        self._root_page_id: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------------

    def create(self, mtr: MiniTransaction) -> None:
        """Allocate the root leaf and register it in the meta page."""
        root = mtr.new_page(PT_LEAF, level=0)
        self.engine.set_tree_root(mtr, self.tree_slot, root.page_id)
        self._root_page_id = root.page_id

    @property
    def root_page_id(self) -> int:
        if self._root_page_id is None:
            self._root_page_id = self.engine.get_tree_root(self.tree_slot)
        return self._root_page_id

    def invalidate_cached_root(self) -> None:
        """Drop the cached root id (after recovery reloads the meta page)."""
        self._root_page_id = None

    # -- public operations ---------------------------------------------------------------

    def lookup(self, mtr: MiniTransaction, key: int) -> Optional[bytes]:
        """Return the payload for ``key``, or None."""
        leaf = self._descend_to_leaf(mtr, key)
        idx, found = self._leaf_search(leaf, key)
        if not found:
            return None
        slot = self._dir_slot(leaf, idx)
        payload = leaf.read(self._heap_offset(slot) + KEY_BYTES, self.payload_size)
        self.engine.meter.charge_ns(
            self.engine.cost.record_copy_ns_per_byte * self.payload_size
        )
        return payload

    def insert(self, mtr: MiniTransaction, key: int, payload: bytes) -> None:
        """Insert a record; raises :class:`DuplicateKeyError` if present."""
        if len(payload) != self.payload_size:
            raise ValueError(
                f"payload is {len(payload)} bytes, tree stores {self.payload_size}"
            )
        path, leaf = self._descend(mtr, key, latch_leaf=True)
        idx, found = self._leaf_search(leaf, key)
        if found:
            raise DuplicateKeyError(key)
        if self._leaf_full(leaf):
            leaf, idx = self._split_leaf(mtr, path, leaf, key)
        self._leaf_insert_at(mtr, leaf, idx, key, payload)

    def update(
        self,
        mtr: MiniTransaction,
        key: int,
        data: bytes,
        field_offset: int = 0,
    ) -> bool:
        """Overwrite ``payload[field_offset : field_offset+len(data)]``.

        Partial updates produce small redo records and touch few cache
        lines — the access pattern that cache-line-granular CXL
        synchronization exploits.
        """
        if field_offset < 0 or field_offset + len(data) > self.payload_size:
            raise ValueError("update outside the payload")
        path, leaf = self._descend(mtr, key, latch_leaf=True)
        idx, found = self._leaf_search(leaf, key)
        if not found:
            return False
        slot = self._dir_slot(leaf, idx)
        offset = self._heap_offset(slot) + KEY_BYTES + field_offset
        mtr.write(leaf, offset, data)
        self.engine.meter.charge_ns(self.engine.cost.write_apply_ns)
        return True

    def delete(self, mtr: MiniTransaction, key: int) -> bool:
        """Remove a record; returns whether it existed.

        A leaf that falls below a quarter full merges with an adjacent
        sibling when their contents fit in one page; the merge SMO runs
        inside the same mini-transaction (two-phase latched, §3.2) and
        may cascade: underfull internals merge too, and a root with a
        single child collapses, shrinking the tree.
        """
        path, leaf = self._descend(mtr, key, latch_leaf=True)
        idx, found = self._leaf_search(leaf, key)
        if not found:
            return False
        self._leaf_delete_at(mtr, leaf, idx)
        self.engine.meter.charge_ns(self.engine.cost.write_apply_ns)
        if path and leaf.nrecs < self.capacity // 4:
            self._try_merge_leaf(mtr, path, leaf)
        return True

    def range_scan(
        self, mtr: MiniTransaction, start_key: int, count: int
    ) -> list[tuple[int, bytes]]:
        """Up to ``count`` records with key >= start_key, in key order.

        Each visited leaf's heap area is read as one sequential burst —
        a scan streams through the page, so the hardware prefetcher (and
        the burst model here) hides per-line latency; only the directory
        probes pay random-access costs.
        """
        out: list[tuple[int, bytes]] = []
        leaf = self._descend_to_leaf(mtr, start_key)
        idx, _ = self._leaf_search(leaf, start_key)
        while len(out) < count:
            nrecs = leaf.nrecs
            heap_count = leaf.heap_count
            if idx < nrecs and heap_count:
                heap = leaf.read(
                    PAGE_HEADER_SIZE, heap_count * self.record_size
                )
                while idx < nrecs and len(out) < count:
                    slot = self._dir_slot(leaf, idx)
                    record = heap[
                        slot * self.record_size : (slot + 1) * self.record_size
                    ]
                    out.append((_U64.unpack_from(record)[0], record[KEY_BYTES:]))
                    idx += 1
            if len(out) >= count:
                break
            next_leaf = leaf.next_leaf
            if next_leaf == 0:
                break
            leaf = mtr.get_page(next_leaf)
            self.engine.meter.charge_ns(self.engine.cost.btree_level_ns)
            idx = 0
        self.engine.meter.charge_ns(
            self.engine.cost.record_copy_ns_per_byte * self.payload_size * len(out)
        )
        return out

    def leaf_page_id_for(self, mtr: MiniTransaction, key: int) -> int:
        """The page id of the leaf that does/would hold ``key``.

        Used by the multi-primary protocol to know which distributed
        page lock to take before operating on the key.
        """
        return self._descend_to_leaf(mtr, key).page_id

    def iter_all(self, mtr: MiniTransaction) -> Iterator[tuple[int, bytes]]:
        """Iterate every record in key order (tests/verification)."""
        leaf = self._descend_to_leaf(mtr, 0)
        while True:
            heap_count = leaf.heap_count
            heap = (
                leaf.read(PAGE_HEADER_SIZE, heap_count * self.record_size)
                if heap_count
                else b""
            )
            for idx in range(leaf.nrecs):
                slot = self._dir_slot(leaf, idx)
                record = heap[
                    slot * self.record_size : (slot + 1) * self.record_size
                ]
                yield _U64.unpack_from(record)[0], record[KEY_BYTES:]
            next_leaf = leaf.next_leaf
            if next_leaf == 0:
                return
            leaf = mtr.get_page(next_leaf)

    # -- descent ------------------------------------------------------------------------

    def _descend(
        self, mtr: MiniTransaction, key: int, latch_leaf: bool
    ) -> tuple[list[tuple[PageView, int]], PageView]:
        """Walk root→leaf; returns (internal path with child indexes, leaf)."""
        view = mtr.get_page(self.root_page_id)
        self.engine.meter.charge_ns(self.engine.cost.btree_level_ns)
        path: list[tuple[PageView, int]] = []
        while view.page_type == PT_INTERNAL:
            child_idx = self._internal_child_index(view, key)
            path.append((view, child_idx))
            child_id = self._internal_child(view, child_idx)
            view = mtr.get_page(child_id)
            self.engine.meter.charge_ns(self.engine.cost.btree_level_ns)
        if latch_leaf:
            mtr.latch_write(view)
        return path, view

    def _descend_to_leaf(self, mtr: MiniTransaction, key: int) -> PageView:
        return self._descend(mtr, key, latch_leaf=False)[1]

    # -- leaf primitives -----------------------------------------------------------------

    def _heap_offset(self, slot: int) -> int:
        return PAGE_HEADER_SIZE + slot * self.record_size

    @staticmethod
    def _dir_offset(rank: int) -> int:
        return PAGE_SIZE - SLOT_BYTES * (rank + 1)

    def _dir_slot(self, leaf: PageView, rank: int) -> int:
        return leaf.read_u16(self._dir_offset(rank))

    def _leaf_key_at_rank(self, leaf: PageView, rank: int) -> int:
        slot = self._dir_slot(leaf, rank)
        return leaf.read_u64(self._heap_offset(slot))

    def _leaf_search(self, leaf: PageView, key: int) -> tuple[int, bool]:
        """Binary search the directory: (rank, exact-match?).

        On a miss the rank is where the key would be inserted.
        """
        lo, hi = 0, leaf.nrecs
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = self._leaf_key_at_rank(leaf, mid)
            if mid_key < key:
                lo = mid + 1
            elif mid_key > key:
                hi = mid
            else:
                return mid, True
        return lo, False

    def _leaf_full(self, leaf: PageView) -> bool:
        return leaf.heap_count >= self.capacity and leaf.first_free == NO_FREE_SLOT

    def _leaf_insert_at(
        self,
        mtr: MiniTransaction,
        leaf: PageView,
        rank: int,
        key: int,
        payload: bytes,
    ) -> None:
        # Claim a heap slot: pop the free list, else extend the heap.
        first_free = leaf.first_free
        if first_free != NO_FREE_SLOT:
            slot = first_free
            next_free = leaf.read_u16(self._heap_offset(slot))
            mtr.write_u16(leaf, OFF_FIRST_FREE, next_free)
        else:
            slot = leaf.heap_count
            if slot >= self.capacity:
                raise BTreeCorruptionError("insert into a full leaf")
            mtr.write_u16(leaf, OFF_HEAP_COUNT, slot + 1)
        mtr.write(leaf, self._heap_offset(slot), _U64.pack(key) + payload)
        # Shift directory ranks [rank, n) down by one slot entry.
        nrecs = leaf.nrecs
        if rank < nrecs:
            span_start = self._dir_offset(nrecs - 1)
            span = leaf.read(span_start, SLOT_BYTES * (nrecs - rank))
            mtr.write(leaf, span_start - SLOT_BYTES, span)
        mtr.write_u16(leaf, self._dir_offset(rank), slot)
        mtr.write_u16(leaf, OFF_NRECS, nrecs + 1)
        self.engine.meter.charge_ns(self.engine.cost.write_apply_ns)

    def _leaf_delete_at(self, mtr: MiniTransaction, leaf: PageView, rank: int) -> None:
        nrecs = leaf.nrecs
        slot = self._dir_slot(leaf, rank)
        # Shift directory ranks (rank, n) up by one entry.
        if rank < nrecs - 1:
            span_start = self._dir_offset(nrecs - 1)
            span = leaf.read(span_start, SLOT_BYTES * (nrecs - 1 - rank))
            mtr.write(leaf, span_start + SLOT_BYTES, span)
        mtr.write_u16(leaf, OFF_NRECS, nrecs - 1)
        # Chain the freed heap slot.
        mtr.write_u16(leaf, self._heap_offset(slot), leaf.first_free)
        mtr.write_u16(leaf, OFF_FIRST_FREE, slot)

    def _read_leaf_records(self, leaf: PageView, ranks: range) -> list[bytes]:
        return [
            leaf.read(self._heap_offset(self._dir_slot(leaf, rank)), self.record_size)
            for rank in ranks
        ]

    def _rewrite_leaf(
        self, mtr: MiniTransaction, leaf: PageView, records: list[bytes]
    ) -> None:
        """Rewrite a leaf compactly: identity directory, no free slots."""
        count = len(records)
        if count:
            mtr.write(leaf, PAGE_HEADER_SIZE, b"".join(records))
            directory = b"".join(
                _U16.pack(count - 1 - j) for j in range(count)
            )
            mtr.write(leaf, self._dir_offset(count - 1), directory)
        mtr.write_u16(leaf, OFF_NRECS, count)
        mtr.write_u16(leaf, OFF_HEAP_COUNT, count)
        mtr.write_u16(leaf, OFF_FIRST_FREE, NO_FREE_SLOT)

    # -- internal-node primitives ------------------------------------------------------------

    @staticmethod
    def _entry_offset(index: int) -> int:
        return PAGE_HEADER_SIZE + index * INTERNAL_ENTRY_BYTES

    def _internal_entry(self, node: PageView, index: int) -> tuple[int, int]:
        return _ENTRY.unpack(node.read(self._entry_offset(index), INTERNAL_ENTRY_BYTES))

    def _internal_key(self, node: PageView, index: int) -> int:
        return node.read_u64(self._entry_offset(index))

    def _internal_child(self, node: PageView, index: int) -> int:
        return node.read_u64(self._entry_offset(index) + KEY_BYTES)

    def _internal_child_index(self, node: PageView, key: int) -> int:
        """Rightmost entry with separator <= key (entry 0 is -inf)."""
        lo, hi = 1, node.nrecs
        while lo < hi:
            mid = (lo + hi) // 2
            if self._internal_key(node, mid) <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def _internal_delete_at(
        self, mtr: MiniTransaction, node: PageView, index: int
    ) -> None:
        nrecs = node.nrecs
        if index < nrecs - 1:
            span = node.read(
                self._entry_offset(index + 1),
                (nrecs - 1 - index) * INTERNAL_ENTRY_BYTES,
            )
            mtr.write(node, self._entry_offset(index), span)
        mtr.write_u16(node, OFF_NRECS, nrecs - 1)

    def _internal_insert_at(
        self,
        mtr: MiniTransaction,
        node: PageView,
        index: int,
        key: int,
        child: int,
    ) -> None:
        nrecs = node.nrecs
        if index < nrecs:
            span = node.read(
                self._entry_offset(index), (nrecs - index) * INTERNAL_ENTRY_BYTES
            )
            mtr.write(node, self._entry_offset(index + 1), span)
        mtr.write(node, self._entry_offset(index), _ENTRY.pack(key, child))
        mtr.write_u16(node, OFF_NRECS, nrecs + 1)

    # -- SMOs ----------------------------------------------------------------------------------

    def _split_leaf(
        self,
        mtr: MiniTransaction,
        path: list[tuple[PageView, int]],
        leaf: PageView,
        key: int,
    ) -> tuple[PageView, int]:
        """Split a full leaf; returns (target leaf, insert rank) for ``key``."""
        self.engine.meter.count("leaf_splits")
        nrecs = leaf.nrecs
        half = nrecs // 2
        lower = self._read_leaf_records(leaf, range(0, half))
        upper = self._read_leaf_records(leaf, range(half, nrecs))
        split_key = _U64.unpack_from(upper[0])[0]

        new_leaf = mtr.new_page(PT_LEAF, level=0)
        self._rewrite_leaf(mtr, new_leaf, upper)
        mtr.write_u64(new_leaf, OFF_NEXT_LEAF, leaf.next_leaf)
        mtr.write_u64(leaf, OFF_NEXT_LEAF, new_leaf.page_id)
        self._rewrite_leaf(mtr, leaf, lower)

        self._insert_separator(mtr, path, leaf, new_leaf, split_key, level=0)

        if key >= split_key:
            rank = self._leaf_search(new_leaf, key)[0]
            return new_leaf, rank
        return leaf, self._leaf_search(leaf, key)[0]

    def _insert_separator(
        self,
        mtr: MiniTransaction,
        path: list[tuple[PageView, int]],
        left: PageView,
        right: PageView,
        split_key: int,
        level: int,
    ) -> None:
        """Install (split_key → right) in the parent, splitting upward."""
        if not path:
            self._grow_root(mtr, left, right, split_key, level)
            return
        parent, child_idx = path[-1]
        mtr.latch_write(parent)
        if parent.nrecs >= INTERNAL_FANOUT:
            parent, child_idx = self._split_internal(mtr, path, parent, child_idx)
        self._internal_insert_at(mtr, parent, child_idx + 1, split_key, right.page_id)

    def _split_internal(
        self,
        mtr: MiniTransaction,
        path: list[tuple[PageView, int]],
        node: PageView,
        child_idx: int,
    ) -> tuple[PageView, int]:
        """Split a full internal node; returns the node/index now covering
        the pending separator insert."""
        self.engine.meter.count("internal_splits")
        nrecs = node.nrecs
        half = nrecs // 2
        upper = node.read(
            self._entry_offset(half), (nrecs - half) * INTERNAL_ENTRY_BYTES
        )
        split_key = _U64.unpack_from(upper)[0]

        new_node = mtr.new_page(PT_INTERNAL, level=node.level)
        mtr.write(new_node, self._entry_offset(0), upper)
        mtr.write_u16(new_node, OFF_NRECS, nrecs - half)
        mtr.write_u16(node, OFF_NRECS, half)

        self._insert_separator(
            mtr, path[:-1], node, new_node, split_key, level=node.level
        )
        if child_idx >= half:
            return new_node, child_idx - half
        return node, child_idx

    def _try_merge_leaf(
        self,
        mtr: MiniTransaction,
        path: list[tuple[PageView, int]],
        leaf: PageView,
    ) -> None:
        """Merge an underfull leaf into an adjacent sibling if both fit."""
        parent, child_idx = path[-1]
        nrecs = parent.nrecs
        if child_idx > 0:
            left = mtr.get_page(self._internal_child(parent, child_idx - 1))
            right = leaf
            right_idx = child_idx
        elif child_idx + 1 < nrecs:
            left = leaf
            right = mtr.get_page(self._internal_child(parent, child_idx + 1))
            right_idx = child_idx + 1
        else:
            # No sibling (single-child parent): only a root collapse can
            # help, and _maybe_shrink handles that.
            self._maybe_shrink(mtr, path)
            return
        if left.nrecs + right.nrecs > self.capacity:
            return
        mtr.latch_write(parent)
        mtr.latch_write(left)
        mtr.latch_write(right)
        self.engine.meter.count("leaf_merges")
        records = self._read_leaf_records(left, range(left.nrecs))
        records += self._read_leaf_records(right, range(right.nrecs))
        mtr.write_u64(left, OFF_NEXT_LEAF, right.next_leaf)
        self._rewrite_leaf(mtr, left, records)
        self._internal_delete_at(mtr, parent, right_idx)
        self.engine.free_page(mtr, right)
        self._maybe_shrink(mtr, path)

    def _maybe_shrink(
        self, mtr: MiniTransaction, path: list[tuple[PageView, int]]
    ) -> None:
        """Cascade upward: merge underfull internals, collapse the root."""
        for depth in range(len(path) - 1, -1, -1):
            node, _ = path[depth]
            if depth == 0:
                if node.page_type == PT_INTERNAL and node.nrecs == 1:
                    mtr.latch_write(node)
                    child = self._internal_child(node, 0)
                    self.engine.set_tree_root(mtr, self.tree_slot, child)
                    self._root_page_id = child
                    self.engine.free_page(mtr, node)
                    self.engine.meter.count("root_collapses")
                return
            if node.nrecs >= max(2, INTERNAL_FANOUT // 4):
                return
            parent, child_idx = path[depth - 1]
            if not self._try_merge_internal(mtr, parent, child_idx, node):
                return

    def _try_merge_internal(
        self,
        mtr: MiniTransaction,
        parent: PageView,
        child_idx: int,
        node: PageView,
    ) -> bool:
        """Merge an underfull internal node into an adjacent sibling."""
        nrecs = parent.nrecs
        if child_idx > 0:
            left = mtr.get_page(self._internal_child(parent, child_idx - 1))
            right = node
            right_idx = child_idx
        elif child_idx + 1 < nrecs:
            left = node
            right = mtr.get_page(self._internal_child(parent, child_idx + 1))
            right_idx = child_idx + 1
        else:
            return False
        if left.nrecs + right.nrecs > INTERNAL_FANOUT:
            return False
        mtr.latch_write(parent)
        mtr.latch_write(left)
        mtr.latch_write(right)
        self.engine.meter.count("internal_merges")
        # The right node's entry 0 acts as -inf inside its subtree; its
        # real lower bound is the parent's separator, which must be
        # materialized when the entries move under the left node.
        separator = self._internal_key(parent, right_idx)
        right_n = right.nrecs
        moved = _ENTRY.pack(separator, self._internal_child(right, 0))
        if right_n > 1:
            moved += right.read(
                self._entry_offset(1), (right_n - 1) * INTERNAL_ENTRY_BYTES
            )
        left_n = left.nrecs
        mtr.write(left, self._entry_offset(left_n), moved)
        mtr.write_u16(left, OFF_NRECS, left_n + right_n)
        self._internal_delete_at(mtr, parent, right_idx)
        self.engine.free_page(mtr, right)
        return True

    def _grow_root(
        self,
        mtr: MiniTransaction,
        left: PageView,
        right: PageView,
        split_key: int,
        level: int,
    ) -> None:
        new_root = mtr.new_page(PT_INTERNAL, level=level + 1)
        mtr.write(new_root, self._entry_offset(0), _ENTRY.pack(0, left.page_id))
        mtr.write(
            new_root, self._entry_offset(1), _ENTRY.pack(split_key, right.page_id)
        )
        mtr.write_u16(new_root, OFF_NRECS, 2)
        self.engine.set_tree_root(mtr, self.tree_slot, new_root.page_id)
        self._root_page_id = new_root.page_id
        self.engine.meter.count("root_splits")

    # -- verification -------------------------------------------------------------------------

    def verify(self, mtr: MiniTransaction) -> dict[str, int]:
        """Walk the whole tree checking invariants; returns statistics.

        Checks: directory keys strictly ascending per leaf; separator
        keys ascending per internal node; every child's keys within its
        separator bounds; leaf chain visits exactly the leaves reachable
        from the root, in ascending key order; heap/free-list accounting
        consistent.
        """
        stats = {"leaves": 0, "internals": 0, "records": 0, "depth": 0}
        reachable_leaves: list[int] = []
        self._verify_node(
            mtr, self.root_page_id, 0, 2**64, stats, reachable_leaves, depth=0
        )
        # Leaf chain must match in-order reachability.
        chain: list[int] = []
        leaf = self._descend_to_leaf(mtr, 0)
        chain.append(leaf.page_id)
        while leaf.next_leaf != 0:
            leaf = mtr.get_page(leaf.next_leaf)
            chain.append(leaf.page_id)
        if chain != reachable_leaves:
            raise BTreeCorruptionError(
                f"leaf chain {chain} != reachable leaves {reachable_leaves}"
            )
        return stats

    def _verify_node(
        self,
        mtr: MiniTransaction,
        page_id: int,
        low: int,
        high: int,
        stats: dict[str, int],
        leaves: list[int],
        depth: int,
    ) -> None:
        view = mtr.get_page(page_id)
        stats["depth"] = max(stats["depth"], depth)
        if view.page_type == PT_LEAF:
            stats["leaves"] += 1
            nrecs = view.nrecs
            stats["records"] += nrecs
            previous = None
            for rank in range(nrecs):
                key = self._leaf_key_at_rank(view, rank)
                if previous is not None and key <= previous:
                    raise BTreeCorruptionError(
                        f"leaf {page_id}: keys not ascending at rank {rank}"
                    )
                if not (low <= key < high):
                    raise BTreeCorruptionError(
                        f"leaf {page_id}: key {key} outside [{low}, {high})"
                    )
                previous = key
            if view.heap_count > self.capacity:
                raise BTreeCorruptionError(f"leaf {page_id}: heap overflow")
            free = view.first_free
            free_count = 0
            seen = set()
            while free != NO_FREE_SLOT:
                if free in seen or free >= view.heap_count:
                    raise BTreeCorruptionError(f"leaf {page_id}: bad free list")
                seen.add(free)
                free_count += 1
                free = view.read_u16(self._heap_offset(free))
            if nrecs + free_count != view.heap_count:
                raise BTreeCorruptionError(
                    f"leaf {page_id}: nrecs {nrecs} + free {free_count} "
                    f"!= heap {view.heap_count}"
                )
            leaves.append(page_id)
            return
        if view.page_type != PT_INTERNAL:
            raise BTreeCorruptionError(f"page {page_id}: unexpected type")
        stats["internals"] += 1
        nrecs = view.nrecs
        if nrecs < 2 and depth == 0:
            raise BTreeCorruptionError("root internal with fewer than 2 children")
        previous_key = None
        for index in range(nrecs):
            key, child = self._internal_entry(view, index)
            if previous_key is not None and key <= previous_key:
                raise BTreeCorruptionError(
                    f"internal {page_id}: separators not ascending"
                )
            child_low = low if index == 0 else key
            child_high = (
                high if index == nrecs - 1 else self._internal_key(view, index + 1)
            )
            self._verify_node(
                mtr, child, child_low, child_high, stats, leaves, depth + 1
            )
            previous_key = key

"""Buffer pool interface and the plain local-DRAM implementation.

Three buffer pools implement this interface across the repository:

* :class:`LocalBufferPool` (here) — all frames in host DRAM; the
  DRAM-BP baseline of Figure 3 and the substrate of the vanilla engine.
* :class:`repro.baselines.rdma_bufferpool.TieredRdmaBufferPool` — a
  DRAM local buffer pool backed by remote memory over RDMA (the paper's
  main baseline).
* :class:`repro.core.cxl_bufferpool.CxlBufferPool` — PolarCXLMem: every
  frame and its metadata live directly in switch-attached CXL memory.

The transaction engine (B-tree, tables, transactions) sees only this
interface; swapping pools requires no engine changes — the property the
paper highlights as key for a commercially deployable design (§3.1).
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Optional

from ..hardware.memory import MappedMemory
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from ..storage.pagestore import PageStore
from .constants import OFF_LSN, PAGE_SIZE
from .page import PageView, format_empty_page

__all__ = ["BufferPool", "LocalBufferPool", "OffsetAccessor", "BufferPoolFullError"]


class BufferPoolFullError(RuntimeError):
    """All frames are pinned; nothing can be evicted."""


class OffsetAccessor:
    """A page accessor over a metered memory window at a fixed base."""

    __slots__ = ("mapped", "base")

    def __init__(self, mapped: MappedMemory, base: int) -> None:
        self.mapped = mapped
        self.base = base

    def read(self, offset: int, nbytes: int) -> bytes:
        return self.mapped.read(self.base + offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self.mapped.write(self.base + offset, data)


class BufferPool(ABC):
    """What the transaction engine requires of any buffer pool."""

    page_size: int = PAGE_SIZE
    redo_log = None  # set via attach_redo_log; enforces the WAL rule

    def attach_redo_log(self, redo_log) -> None:
        """Bind the log whose durability gates page flushes (WAL rule)."""
        self.redo_log = redo_log

    def _wal_guard(self, page_lsn: int) -> None:
        """Force the log before a page image newer than it hits storage.

        Write-ahead logging's one invariant: storage must never hold a
        page whose LSN exceeds the durable log, or a crash leaves
        changes on disk that replay knows nothing about.
        """
        if self.redo_log is not None and page_lsn > self.redo_log.durable_max_lsn:
            self.redo_log.flush()

    @abstractmethod
    def get_page(self, page_id: int) -> PageView:
        """Pin and return a page, loading it on a miss."""

    @abstractmethod
    def new_page(self, page_id: int, page_type: int, level: int = 0) -> PageView:
        """Pin and return a freshly formatted page (no storage read)."""

    @abstractmethod
    def unpin(self, page_id: int) -> None:
        """Release one pin; unpinned pages become eviction candidates."""

    @abstractmethod
    def contains(self, page_id: int) -> bool:
        """Whether the page is currently resident."""

    @abstractmethod
    def mark_dirty(self, page_id: int) -> None:
        """Note that the resident copy is newer than storage."""

    @abstractmethod
    def flush_page(self, page_id: int) -> None:
        """Write the resident copy to storage and clear its dirty bit."""

    @abstractmethod
    def flush_dirty_pages(self) -> int:
        """Flush everything dirty; returns the number of pages written."""

    @abstractmethod
    def resident_page_ids(self) -> list[int]:
        """Pages currently resident (diagnostics and recovery)."""

    def note_write_latch(self, page_id: int, held: bool) -> None:
        """Hook: a write latch was taken/released on a resident page.

        The CXL pool persists this in block metadata so PolarRecv can
        spot pages that were mid-update at crash time. Default: no-op.
        """

    def note_lru_touch(self, page_id: int) -> None:
        """Hook: the page was used (LRU maintenance). Default: no-op."""


class LocalBufferPool(BufferPool):
    """All frames in a volatile DRAM region; evicts dirty pages to storage."""

    def __init__(
        self,
        mapped: MappedMemory,
        page_store: PageStore,
        capacity_pages: int,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        if mapped.region.size < capacity_pages * PAGE_SIZE:
            raise ValueError("backing region smaller than the frame array")
        self.mapped = mapped
        self.page_store = page_store
        self.capacity_pages = capacity_pages
        self._frame_of: dict[int, int] = {}
        self._free_frames = list(range(capacity_pages - 1, -1, -1))
        # Accessors are stateless (mapped, base) views; one per frame for
        # the pool's lifetime instead of one per get_page.
        self._accessors: list[Optional[OffsetAccessor]] = [None] * capacity_pages
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- interface ------------------------------------------------------------------

    def get_page(self, page_id: int) -> PageView:
        tracer = obs_active()
        frame = self._frame_of.get(page_id)
        if frame is None:
            self.misses += 1
            if tracer is not None:
                tracer.count("pool.dram.misses")
            spans = spans_active()
            span = (
                spans.begin(
                    "page_fix", "dram_miss", meter=self.mapped.meter, page=page_id
                )
                if spans is not None
                else None
            )
            frame = self._claim_frame()
            image = self.page_store.read_page(page_id)
            self.mapped.write(frame * PAGE_SIZE, image)
            self._frame_of[page_id] = frame
            if span is not None:
                spans.end(span)
        else:
            self.hits += 1
            if tracer is not None:
                tracer.count("pool.dram.hits")
        self._touch(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._view(page_id, frame)

    def new_page(self, page_id: int, page_type: int, level: int = 0) -> PageView:
        if page_id in self._frame_of:
            raise ValueError(f"page {page_id} already resident")
        frame = self._claim_frame()
        self.mapped.write(frame * PAGE_SIZE, format_empty_page(page_id, page_type, level))
        self._frame_of[page_id] = frame
        self._dirty.add(page_id)
        self._touch(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._view(page_id, frame)

    def install_page(self, page_id: int, image: bytes, dirty: bool = True) -> None:
        """Recovery: place a rebuilt page image directly into a frame."""
        frame = self._frame_of.get(page_id)
        if frame is None:
            frame = self._claim_frame()
            self._frame_of[page_id] = frame
        self.mapped.write(frame * PAGE_SIZE, image)
        if dirty:
            self._dirty.add(page_id)
        self._touch(page_id)

    def unpin(self, page_id: int) -> None:
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned page {page_id}")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def contains(self, page_id: int) -> bool:
        return page_id in self._frame_of

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frame_of:
            raise KeyError(f"page {page_id} not resident")
        self._dirty.add(page_id)

    def flush_page(self, page_id: int) -> None:
        frame = self._frame_of[page_id]
        image = self.mapped.read(frame * PAGE_SIZE, PAGE_SIZE)
        self._wal_guard(struct.unpack_from("<Q", image, OFF_LSN)[0])
        self.page_store.write_page(page_id, image)
        self._dirty.discard(page_id)

    def flush_dirty_pages(self) -> int:
        dirty = sorted(self._dirty)
        for page_id in dirty:
            self.flush_page(page_id)
        return len(dirty)

    def resident_page_ids(self) -> list[int]:
        return list(self._frame_of)

    # -- internals --------------------------------------------------------------------

    def _view(self, page_id: int, frame: Optional[int] = None) -> PageView:
        if frame is None:
            frame = self._frame_of[page_id]
        accessor = self._accessors[frame]
        if accessor is None:
            accessor = self._accessors[frame] = OffsetAccessor(
                self.mapped, frame * PAGE_SIZE
            )
        return PageView(page_id, accessor, self)

    def _touch(self, page_id: int) -> None:
        self._lru[page_id] = None
        self._lru.move_to_end(page_id)

    def _claim_frame(self) -> int:
        if self._free_frames:
            return self._free_frames.pop()
        return self._evict_one()

    def _evict_one(self) -> int:
        for victim in self._lru:
            if self._pins.get(victim, 0) == 0:
                break
        else:
            raise BufferPoolFullError("every resident page is pinned")
        if victim in self._dirty:
            self.flush_page(victim)
        frame = self._frame_of.pop(victim)
        del self._lru[victim]
        self.evictions += 1
        tracer = obs_active()
        if tracer is not None:
            tracer.count("pool.dram.evictions")
        return frame

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def resident_count(self) -> int:
        return len(self._frame_of)

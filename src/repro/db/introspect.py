"""Engine introspection: one call that answers "what state is this
database in?" — buffer pool residency and hit ratios, WAL/checkpoint
positions, per-table tree shapes, and interconnect counters.

The moral equivalent of `SHOW ENGINE INNODB STATUS`, used by examples
and handy when debugging an experiment configuration.
"""

from __future__ import annotations

from typing import Any

from .engine import Engine

__all__ = ["engine_report"]


def engine_report(engine: Engine, include_trees: bool = True) -> dict[str, Any]:
    """A nested snapshot of the engine's observable state.

    ``include_trees`` walks every B-tree with its verifier (O(dataset));
    switch it off for quick buffer/WAL-only snapshots.
    """
    pool = engine.buffer_pool
    report: dict[str, Any] = {
        "name": engine.name,
        "crashed": engine.crashed,
        "buffer_pool": _pool_section(pool),
        "wal": {
            "durable_max_lsn": engine.redo_log.durable_max_lsn,
            "checkpoint_lsn": engine.redo_log.checkpoint_lsn,
            "buffered_records": engine.redo_log.buffered_records,
            "flushes": engine.redo_log.flushes,
            "bytes_flushed": engine.redo_log.bytes_flushed,
        },
        "storage": {
            "pages": len(engine.page_store),
            "reads": engine.page_store.reads,
            "writes": engine.page_store.writes,
        },
        "counters": dict(engine.meter.counters),
    }
    if include_trees:
        tables: dict[str, Any] = {}
        for name, table in engine.tables.items():
            mtr = engine.mtr()
            stats = table.btree.verify(mtr)
            index_stats = {
                field: index.btree.verify(mtr)
                for field, index in table.indexes.items()
            }
            mtr.commit()
            entry: dict[str, Any] = dict(stats)
            if index_stats:
                entry["indexes"] = index_stats
            tables[name] = entry
        report["tables"] = tables
    return report


def _pool_section(pool) -> dict[str, Any]:
    section: dict[str, Any] = {"kind": type(pool).__name__}
    for attribute in (
        "resident_count",
        "dirty_count",
        "capacity_pages",
        "local_capacity_pages",
        "n_blocks",
        "hits",
        "misses",
        "evictions",
        "remote_fetches",
        "storage_fetches",
        "invalidations_observed",
        "removals_observed",
        "metadata_entries_used",
    ):
        value = getattr(pool, attribute, None)
        if value is not None:
            section[attribute] = value
    hits = section.get("hits")
    misses = section.get("misses")
    if hits is not None and misses is not None and hits + misses:
        section["hit_ratio"] = hits / (hits + misses)
    return section

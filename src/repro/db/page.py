"""Page views: typed access to one page's bytes, wherever they live.

A :class:`PageView` binds a page id to a :class:`PageAccessor` — the
object that actually moves bytes (a metered window onto DRAM, onto CXL
memory, or through a functional CPU cache in the sharing scenario). The
B-tree and recovery code never know where a page physically resides;
that indirection is what lets the same engine run on a local, a tiered
RDMA, or a PolarCXLMem buffer pool.

All mutations in normal operation go through the mini-transaction
(:mod:`repro.db.mtr`), which adds redo logging; the raw ``write`` here is
for recovery replay and pool-internal initialization.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol

from .constants import (
    NO_FREE_SLOT,
    OFF_FIRST_FREE,
    OFF_HEAP_COUNT,
    OFF_LEVEL,
    OFF_LSN,
    OFF_NEXT_LEAF,
    OFF_NRECS,
    OFF_PAGE_ID,
    OFF_PAGE_TYPE,
    PAGE_SIZE,
)

__all__ = ["PageAccessor", "PageView", "format_empty_page"]

_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")
_U8 = struct.Struct("<B")


class PageAccessor(Protocol):
    """Moves bytes for one page; implementations meter the movement."""

    def read(self, offset: int, nbytes: int) -> bytes: ...

    def write(self, offset: int, data: bytes) -> None: ...


class PageView:
    """One page, seen through an accessor, pinned in some buffer pool."""

    __slots__ = ("page_id", "accessor", "pool")

    def __init__(
        self, page_id: int, accessor: PageAccessor, pool: Optional[object] = None
    ) -> None:
        self.page_id = page_id
        self.accessor = accessor
        self.pool = pool

    # -- raw byte access -----------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        return self.accessor.read(offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self.accessor.write(offset, data)

    def image(self) -> bytes:
        """The full page image (used when flushing to storage)."""
        return self.accessor.read(0, PAGE_SIZE)

    # -- typed helpers ---------------------------------------------------------------

    def read_u64(self, offset: int) -> int:
        return _U64.unpack(self.accessor.read(offset, 8))[0]

    def write_u64(self, offset: int, value: int) -> None:
        self.accessor.write(offset, _U64.pack(value))

    def read_u16(self, offset: int) -> int:
        return _U16.unpack(self.accessor.read(offset, 2))[0]

    def write_u16(self, offset: int, value: int) -> None:
        self.accessor.write(offset, _U16.pack(value))

    def read_u8(self, offset: int) -> int:
        return self.accessor.read(offset, 1)[0]

    def write_u8(self, offset: int, value: int) -> None:
        self.accessor.write(offset, _U8.pack(value))

    # -- header fields ----------------------------------------------------------------

    @property
    def stored_page_id(self) -> int:
        return self.read_u64(OFF_PAGE_ID)

    @property
    def lsn(self) -> int:
        return self.read_u64(OFF_LSN)

    def set_lsn(self, lsn: int) -> None:
        self.write_u64(OFF_LSN, lsn)

    @property
    def page_type(self) -> int:
        return self.read_u8(OFF_PAGE_TYPE)

    @property
    def level(self) -> int:
        return self.read_u8(OFF_LEVEL)

    @property
    def nrecs(self) -> int:
        return self.read_u16(OFF_NRECS)

    @property
    def next_leaf(self) -> int:
        return self.read_u64(OFF_NEXT_LEAF)

    @property
    def heap_count(self) -> int:
        return self.read_u16(OFF_HEAP_COUNT)

    @property
    def first_free(self) -> int:
        return self.read_u16(OFF_FIRST_FREE)


def format_empty_page(page_id: int, page_type: int, level: int = 0) -> bytes:
    """A fresh page image with an initialized header and zeroed body."""
    image = bytearray(PAGE_SIZE)
    _U64.pack_into(image, OFF_PAGE_ID, page_id)
    _U64.pack_into(image, OFF_LSN, 0)
    image[OFF_PAGE_TYPE] = page_type
    image[OFF_LEVEL] = level
    _U16.pack_into(image, OFF_NRECS, 0)
    _U64.pack_into(image, OFF_NEXT_LEAF, 0)
    _U16.pack_into(image, OFF_HEAP_COUNT, 0)
    _U16.pack_into(image, OFF_FIRST_FREE, NO_FREE_SLOT)
    return bytes(image)

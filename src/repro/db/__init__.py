"""Database engine substrate: pages, B+tree, buffer pools, transactions."""

from .btree import BTree, BTreeCorruptionError, DuplicateKeyError
from .bufferpool import (
    BufferPool,
    BufferPoolFullError,
    LocalBufferPool,
    OffsetAccessor,
)
from .constants import (
    INTERNAL_FANOUT,
    META_PAGE_ID,
    PAGE_HEADER_SIZE,
    PAGE_SIZE,
    PT_FREE,
    PT_INTERNAL,
    PT_LEAF,
    PT_META,
    leaf_capacity,
)
from .engine import Engine, EngineCrashedError
from .introspect import engine_report
from .mtr import MiniTransaction, MtrStateError
from .page import PageAccessor, PageView, format_empty_page
from .record import Field, RecordCodec
from .table import SecondaryIndex, Table
from .txn import Transaction

__all__ = [
    "BTree",
    "BTreeCorruptionError",
    "DuplicateKeyError",
    "BufferPool",
    "BufferPoolFullError",
    "LocalBufferPool",
    "OffsetAccessor",
    "INTERNAL_FANOUT",
    "META_PAGE_ID",
    "PAGE_HEADER_SIZE",
    "PAGE_SIZE",
    "PT_FREE",
    "PT_INTERNAL",
    "PT_LEAF",
    "PT_META",
    "leaf_capacity",
    "Engine",
    "EngineCrashedError",
    "engine_report",
    "MiniTransaction",
    "MtrStateError",
    "PageAccessor",
    "PageView",
    "format_empty_page",
    "Field",
    "RecordCodec",
    "SecondaryIndex",
    "Table",
    "Transaction",
]

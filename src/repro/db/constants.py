"""On-page layout constants shared by the engine, buffer pools and recovery.

Every database page is 16 KB (PolarDB/InnoDB default, and the transfer
unit whose movement causes the RDMA read/write amplification the paper
measures). The 32-byte page header is:

====== ===== =====================================================
offset bytes field
====== ===== =====================================================
0      8     page_id (u64)
8      8     lsn (u64) — LSN of the latest applied redo record
16     1     page_type (free / leaf / internal / meta)
17     1     level — B-tree level, 0 for leaves
18     2     nrecs (u16) — record count
20     8     next_leaf (u64) — leaf sibling chain, 0 = none
28     2     heap_count (u16) — physical records in the heap area (leaves)
30     2     first_free (u16) — head of the freed-slot list, 0xFFFF = none
====== ===== =====================================================

Leaf pages use a slot-directory layout: fixed-size records (key +
payload) are appended to a heap area growing up from the header, and a
directory of u16 heap-slot numbers kept in key order grows down from the
end of the page. Inserting logs only the new record plus the shifted
directory tail (a few dozen bytes), not a half-page memmove. Freed heap
slots are chained through their first two bytes and reused. Internal
pages keep a plain sorted array of (key, child) pairs — SMOs are rare
enough that shift-logging them is fine.
"""

from __future__ import annotations

PAGE_SIZE = 16384
PAGE_HEADER_SIZE = 32

OFF_PAGE_ID = 0
OFF_LSN = 8
OFF_PAGE_TYPE = 16
OFF_LEVEL = 17
OFF_NRECS = 18
OFF_NEXT_LEAF = 20
OFF_HEAP_COUNT = 28
OFF_FIRST_FREE = 30

NO_FREE_SLOT = 0xFFFF
SLOT_BYTES = 2

PT_FREE = 0
PT_LEAF = 1
PT_INTERNAL = 2
PT_META = 3

# The meta page anchors everything recoverable: the page allocator's
# next page id, one root-page-id slot per B-tree, and the head of the
# freed-page list (pages released by merge SMOs, chained through their
# next_leaf header field; 0 = empty).
META_PAGE_ID = 0
META_OFF_NEXT_PAGE_ID = 32
META_OFF_TREE_ROOTS = 40
META_MAX_TREES = 64
META_OFF_FREE_PAGE_HEAD = META_OFF_TREE_ROOTS + META_MAX_TREES * 8

KEY_BYTES = 8
CHILD_BYTES = 8
INTERNAL_ENTRY_BYTES = KEY_BYTES + CHILD_BYTES

# Capacity of an internal node.
INTERNAL_FANOUT = (PAGE_SIZE - PAGE_HEADER_SIZE) // INTERNAL_ENTRY_BYTES


def leaf_capacity(payload_size: int) -> int:
    """How many (key, payload, slot) records fit in one leaf page."""
    if payload_size <= 0:
        raise ValueError("payload size must be positive")
    capacity = (PAGE_SIZE - PAGE_HEADER_SIZE) // (
        KEY_BYTES + payload_size + SLOT_BYTES
    )
    if capacity < 4:
        raise ValueError(
            f"payload of {payload_size} bytes leaves room for only "
            f"{capacity} records per leaf; need at least 4"
        )
    return capacity

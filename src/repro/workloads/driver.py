"""Drivers: run workloads inside the discrete-event simulation.

Two drivers cover the paper's experiment classes:

* :class:`PoolingDriver` — N database instances on one (or more) hosts,
  each with worker "threads" executing functional transactions and
  settling their metered cost into simulated time and pipe traffic.
  Produces the throughput / latency / bandwidth numbers of Figures
  1, 3, 7, 8 and 9.
* :class:`SharingDriver` — N multi-primary nodes executing
  :class:`~repro.workloads.base.Op` lists through the distributed-lock
  + coherency protocol generators. Produces Figures 11–13 and Table 3.

Both run a warmup phase, then a barrier resets the measurement windows
of every pipe, then a fixed number of measured transactions per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.sharing import MultiPrimaryNode
from ..db.engine import Engine
from ..faults.injector import InjectedCrash
from ..hardware.host import Host
from ..hardware.memory import AccessMeter
from ..obs.metrics import active as metrics_active
from ..obs.spans import active as spans_active
from ..obs.spans import attached as span_attached
from ..sim.core import Event, Simulator
from ..sim.latency import CostModel
from ..sim.resources import Pipe
from ..sim.rng import WorkloadRng
from ..sim.settle import ChargeSettler
from ..sim.stats import LatencyRecorder, TimeSeries
from .base import Op, TxnStats

__all__ = [
    "InstanceCtx",
    "RunResult",
    "PoolingDriver",
    "SharingDriver",
    "FleetOp",
    "FleetLoadDriver",
]


@dataclass
class InstanceCtx:
    """One database instance wired to its host for the pooling driver."""

    engine: Engine
    host: Host
    rng: WorkloadRng
    settler: ChargeSettler = field(init=False)

    def __post_init__(self) -> None:
        self.settler = ChargeSettler(
            self.host.sim, self.engine.meter, self.host.pipes
        )


@dataclass
class RunResult:
    """Measured outcome of one driver run."""

    txns: int
    queries: int
    elapsed_ns: int
    avg_latency_ns: float
    p95_latency_ns: float
    pipe_bandwidth: dict[str, float]
    counters: dict[str, float]
    lock_waits: int = 0

    @property
    def tps(self) -> float:
        return self.txns * 1e9 / self.elapsed_ns if self.elapsed_ns else 0.0

    @property
    def qps(self) -> float:
        return self.queries * 1e9 / self.elapsed_ns if self.elapsed_ns else 0.0

    def to_dict(self) -> dict:
        """Flat dict for programmatic consumption (CSV/JSON exports)."""
        out = {
            "txns": self.txns,
            "queries": self.queries,
            "elapsed_ns": self.elapsed_ns,
            "tps": self.tps,
            "qps": self.qps,
            "avg_latency_ns": self.avg_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "lock_waits": self.lock_waits,
        }
        for key, value in self.pipe_bandwidth.items():
            out[f"bw_{key}_gbps"] = value / 1e9
        return out


class _Barrier:
    """All workers arrive, pipes reset, measurement begins."""

    def __init__(self, sim: Simulator, parties: int, pipes: Sequence[Pipe]) -> None:
        self.sim = sim
        self.parties = parties
        self.pipes = pipes
        self._arrived = 0
        self._event = sim.event()
        self.start_ns: Optional[int] = None

    def arrive(self) -> Event:
        self._arrived += 1
        if self._arrived == self.parties:
            for pipe in self.pipes:
                pipe.reset_window()
            self.start_ns = self.sim.now
            self._event.succeed()
        return self._event


def _collect_pipes(hosts: Sequence[Host]) -> dict[str, list[Pipe]]:
    """Unique pipes by key across hosts (for bandwidth reporting)."""
    out: dict[str, list[Pipe]] = {}
    seen: set[int] = set()
    for host in hosts:
        for key, pipes in host.pipes.items():
            for pipe in pipes:
                if id(pipe) not in seen:
                    seen.add(id(pipe))
                    out.setdefault(key, []).append(pipe)
    return out


def _bandwidths(pipes_by_key: dict[str, list[Pipe]]) -> dict[str, float]:
    return {
        key: sum(pipe.window_bandwidth() for pipe in pipes)
        for key, pipes in pipes_by_key.items()
    }


class PoolingDriver:
    """Single-primary instances under a functional-transaction workload."""

    def __init__(
        self,
        sim: Simulator,
        instances: Sequence[InstanceCtx],
        txn_fn: Callable[[Engine, WorkloadRng], TxnStats],
        workers_per_instance: int = 48,
        warmup_txns: int = 4,
        measure_txns: int = 16,
        timeline: Optional[TimeSeries] = None,
    ) -> None:
        self.sim = sim
        self.instances = list(instances)
        self.txn_fn = txn_fn
        self.workers_per_instance = workers_per_instance
        self.warmup_txns = warmup_txns
        self.measure_txns = measure_txns
        self.timeline = timeline
        self.latency = LatencyRecorder()
        self._queries = 0
        self._txns = 0
        self._end_ns = 0

    def run(self) -> RunResult:
        spans = spans_active()
        if spans is not None:
            # Rebind unconditionally: one session-wide tracer may span
            # several simulators, and a stale clock from a previous sim
            # would stamp nonsense wall times on this run's spans.
            spans.attach_clock(lambda: self.sim.now)
        mp = metrics_active()
        if mp is not None:
            # Same reasoning as the span clock: a pipeline shared across
            # simulators must re-align its scrape grid to this run.
            mp.anchor(self.sim.now)
        pipes_by_key = _collect_pipes([ictx.host for ictx in self.instances])
        all_pipes = [pipe for pipes in pipes_by_key.values() for pipe in pipes]
        barrier = _Barrier(
            self.sim,
            len(self.instances) * self.workers_per_instance,
            all_pipes,
        )
        for index, ictx in enumerate(self.instances):
            for worker_id in range(self.workers_per_instance):
                rng = ictx.rng.fork(worker_id + 1)
                self.sim.process(
                    self._worker(ictx, rng, barrier, worker_id),
                    name=f"inst{index}.w{worker_id}",
                )
        self.sim.run()
        elapsed = max(1, self._end_ns - (barrier.start_ns or 0))
        meters = [ictx.engine.meter for ictx in self.instances]
        return RunResult(
            txns=self._txns,
            queries=self._queries,
            elapsed_ns=elapsed,
            avg_latency_ns=self.latency.mean_ns,
            p95_latency_ns=self.latency.p95_ns if self.latency.count else 0.0,
            pipe_bandwidth=_bandwidths(pipes_by_key),
            counters=_merge_counters(meters),
        )

    def _worker(
        self, ictx: InstanceCtx, rng: WorkloadRng, barrier: _Barrier, worker_id: int
    ):
        # Stagger worker starts so identical service times don't
        # phase-lock completions into bursty buckets.
        if worker_id:
            yield self.sim.timeout(worker_id * 9_700)
        for _ in range(self.warmup_txns):
            yield from self._one_txn(ictx, rng)
        yield barrier.arrive()
        for _ in range(self.measure_txns):
            start = self.sim.now
            stats = yield from self._one_txn(ictx, rng)
            self.latency.add(self.sim.now - start)
            self._txns += 1
            self._queries += stats.queries
            if self.timeline is not None:
                self.timeline.record(self.sim.now, stats.queries)
            mp = metrics_active()
            if mp is not None:
                mp.observe("txn.latency_ns", self.sim.now - start, driver="pooling")
                mp.count("txn.completions", 1.0, driver="pooling")
            self._end_ns = max(self._end_ns, self.sim.now)

    def _one_txn(self, ictx: InstanceCtx, rng: WorkloadRng):
        spans = spans_active()
        if spans is None:
            stats = self.txn_fn(ictx.engine, rng)
            yield from ictx.settler.settle()
            return stats
        root = spans.begin(
            "txn", "pooling_txn", meter=ictx.engine.meter, push=False
        )
        with span_attached(spans, root):
            stats = self.txn_fn(ictx.engine, rng)
        yield from ictx.settler.settle(span=root)
        spans.end(root)
        return stats


class SharingDriver:
    """Multi-primary nodes under an Op-list workload."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[MultiPrimaryNode],
        hosts: Sequence[Host],
        txn_ops_fn: Callable[[WorkloadRng, int, float], list[Op]],
        shared_pct: float,
        cost: Optional[CostModel] = None,
        rng: Optional[WorkloadRng] = None,
        workers_per_node: int = 16,
        warmup_txns: int = 2,
        measure_txns: int = 8,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.hosts = list(hosts)
        self.txn_ops_fn = txn_ops_fn
        self.shared_pct = shared_pct
        self.cost = cost or CostModel()
        self.rng = rng or WorkloadRng()
        self.workers_per_node = workers_per_node
        self.warmup_txns = warmup_txns
        self.measure_txns = measure_txns
        self.latency = LatencyRecorder()
        self._queries = 0
        self._txns = 0
        self._end_ns = 0

    def run(self) -> RunResult:
        spans = spans_active()
        if spans is not None:
            # Rebind unconditionally: one session-wide tracer may span
            # several simulators, and a stale clock from a previous sim
            # would stamp nonsense wall times on this run's spans.
            spans.attach_clock(lambda: self.sim.now)
        mp = metrics_active()
        if mp is not None:
            mp.anchor(self.sim.now)
        pipes_by_key = _collect_pipes(self.hosts)
        all_pipes = [pipe for pipes in pipes_by_key.values() for pipe in pipes]
        barrier = _Barrier(
            self.sim, len(self.nodes) * self.workers_per_node, all_pipes
        )
        for node_index, node in enumerate(self.nodes):
            for worker_id in range(self.workers_per_node):
                rng = self.rng.fork(node_index * 1000 + worker_id + 1)
                self.sim.process(
                    self._worker(node, node_index, rng, barrier, worker_id),
                    name=f"{node.node_id}.w{worker_id}",
                )
        self.sim.run()
        elapsed = max(1, self._end_ns - (barrier.start_ns or 0))
        meters = [node.engine.meter for node in self.nodes]
        lock_waits = self.nodes[0].lock_service.contended_acquires
        return RunResult(
            txns=self._txns,
            queries=self._queries,
            elapsed_ns=elapsed,
            avg_latency_ns=self.latency.mean_ns,
            p95_latency_ns=self.latency.p95_ns if self.latency.count else 0.0,
            pipe_bandwidth=_bandwidths(pipes_by_key),
            counters=_merge_counters(meters),
            lock_waits=lock_waits,
        )

    def _worker(
        self,
        node: MultiPrimaryNode,
        node_index: int,
        rng: WorkloadRng,
        barrier: _Barrier,
        worker_id: int,
    ):
        if worker_id:
            yield self.sim.timeout(worker_id * 9_700)
        for _ in range(self.warmup_txns):
            yield from self._one_txn(node, node_index, rng)
        yield barrier.arrive()
        for _ in range(self.measure_txns):
            start = self.sim.now
            queries = yield from self._one_txn(node, node_index, rng)
            self.latency.add(self.sim.now - start)
            self._txns += 1
            self._queries += queries
            mp = metrics_active()
            if mp is not None:
                mp.observe(
                    "txn.latency_ns",
                    self.sim.now - start,
                    driver="sharing",
                    node=node.node_id,
                )
                mp.count("txn.completions", 1.0, driver="sharing")
            self._end_ns = max(self._end_ns, self.sim.now)

    def _one_txn(self, node: MultiPrimaryNode, node_index: int, rng: WorkloadRng):
        ops = self.txn_ops_fn(rng, node_index, self.shared_pct)
        spans = spans_active()
        root = (
            spans.begin("txn", "sharing_txn", meter=node.engine.meter, push=False)
            if spans is not None
            else None
        )
        for op in ops:
            node.engine.meter.charge_ns(self.cost.query_fixed_ns)
            if op.kind == "select":
                yield from node.point_select(op.table, op.key, span_parent=root)
            elif op.kind == "update":
                yield from node.point_update(
                    op.table, op.key, op.field, op.value, span_parent=root
                )
            elif op.kind == "range":
                rows = yield from node.range_select(
                    op.table, op.key, op.count, span_parent=root
                )
                node.engine.meter.charge_ns(self.cost.range_row_ns * len(rows))
                yield from node.settler.settle(span=root)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")
        if root is not None:
            spans.end(root)
        return len(ops)


@dataclass(frozen=True)
class FleetOp:
    """One client operation in a fleet scenario's deterministic stream.

    ``node`` names the *preferred* executor (the partition owner for
    updates); the driver re-routes to the next live node in ring order
    when it is dead, which is exactly how partition ownership transfers
    to a single successor at failover.
    """

    index: int
    kind: str  # "select" | "update"
    table: str
    key: int
    node: int
    field: str = "k"
    value: Optional[int] = None


class FleetLoadDriver:
    """Keep a deterministic op stream applied to a sharing fleet while
    nodes crash, fail over, leave and join (:mod:`repro.ha.scenarios`).

    Unlike :class:`SharingDriver` (fixed node set, throughput
    measurement), this is an op *pump* with a routing table: ops run one
    at a time through ``sim.run_process``, each addressed to a preferred
    node and re-routed in ring order past dead ones. An
    :class:`InjectedCrash` is caught and reported as
    ``("crashed", node, None)`` so the scenario engine can choreograph
    failover; RPC exhaustion propagates to the caller — degradation
    policy (circuit breaker, load shedding) is the scenario's job, not
    the router's.
    """

    def __init__(self, setup) -> None:
        self.setup = setup
        self.sim: Simulator = setup.sim
        self.live: set[int] = set(range(len(setup.nodes)))
        self.ops_run = 0
        self.crashes_seen = 0
        spans = spans_active()
        if spans is not None:
            spans.attach_clock(lambda: self.sim.now)
        mp = metrics_active()
        if mp is not None:
            mp.anchor(self.sim.now)
            mp.gauge("fleet.live_nodes", float(len(self.live)))

    # -- membership ------------------------------------------------------------

    def _gauge_live(self) -> None:
        mp = metrics_active()
        if mp is not None:
            mp.gauge("fleet.live_nodes", float(len(self.live)))

    def mark_dead(self, index: int) -> None:
        self.live.discard(index)
        self._gauge_live()

    def mark_live(self, index: int) -> None:
        if not 0 <= index < len(self.setup.nodes):
            raise IndexError(f"node index {index} out of range")
        self.live.add(index)
        self._gauge_live()

    def add_node(self, node: MultiPrimaryNode) -> int:
        """Register a node already appended to ``setup.nodes`` (a fleet
        join) and return its routing index."""
        index = self.setup.nodes.index(node)
        self.live.add(index)
        self._gauge_live()
        return index

    def route(self, preferred: int) -> int:
        """The live node that serves ops preferring ``preferred``."""
        n = len(self.setup.nodes)
        for step in range(n):
            candidate = (preferred + step) % n
            if candidate in self.live:
                return candidate
        raise RuntimeError("fleet has no live nodes left to route to")

    # -- execution -------------------------------------------------------------

    def run_op(self, op: FleetOp) -> tuple[str, int, object]:
        """Run one op to completion; ``(status, executor, result)``."""
        target = self.route(op.node)
        node = self.setup.nodes[target]
        self.ops_run += 1
        try:
            if op.kind == "select":
                row = self.sim.run_process(node.point_select(op.table, op.key))
                outcome: tuple[str, int, object] = ("ok", target, row)
            elif op.kind == "update":
                found = self.sim.run_process(
                    node.point_update(op.table, op.key, op.field, op.value)
                )
                outcome = ("ok", target, found)
            else:
                raise ValueError(f"unknown fleet op kind {op.kind!r}")
        except InjectedCrash:
            self.crashes_seen += 1
            outcome = ("crashed", target, None)
        mp = metrics_active()
        if mp is not None:
            mp.count(
                "fleet.client_ops", 1.0, kind=op.kind, status=outcome[0]
            )
            mp.maybe_scrape(self.sim.now)
        return outcome


def _merge_counters(meters: Sequence[AccessMeter]) -> dict[str, float]:
    merged: dict[str, float] = {}
    for meter in meters:
        for key, value in meter.counters.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged

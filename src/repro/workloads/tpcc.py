"""TPC-C for the multi-primary sharing experiments (Table 3).

A scaled-down TPC-C with the standard five-transaction mix
(NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%,
StockLevel 4%). Warehouses are partitioned across nodes; cross-
warehouse touches (≈10% of NewOrder stock updates, 15% of Payment
customers) are the only data sharing, matching the paper's
"inherently well-partitioned, ~10% cross-warehouse" characterization.

Scaling and simplifications (documented in DESIGN.md):

* districts/customers/items/stock are scaled down so a 15-node cluster
  loads in seconds; ratios between them are preserved,
* Orders/NewOrder/OrderLine rows are **preallocated rings** updated in
  place — multi-primary page allocation (inserts that split shared
  B-trees) is a single-primary operation in this reproduction, and the
  sharing traffic of NewOrder is identical either way: one hot district
  page update plus order/order-line row writes.
"""

from __future__ import annotations

from ..db.engine import Engine
from ..db.record import Field, RecordCodec
from ..sim.rng import WorkloadRng
from .base import Op, Workload, load_tables

__all__ = ["TpccWorkload", "TPCC_MIX"]

TPCC_MIX = (
    ("new_order", 45),
    ("payment", 43),
    ("order_status", 4),
    ("delivery", 4),
    ("stock_level", 4),
)

_WAREHOUSE = RecordCodec([Field("ytd", 8), Field("pad", 80, "bytes")])
_DISTRICT = RecordCodec(
    [Field("next_o_id", 8), Field("ytd", 8), Field("pad", 80, "bytes")]
)
_CUSTOMER = RecordCodec(
    [Field("balance", 8), Field("payments", 4), Field("pad", 120, "bytes")]
)
_ITEM = RecordCodec([Field("price", 4), Field("name", 24, "bytes"), Field("pad", 26, "bytes")])
_STOCK = RecordCodec(
    [
        Field("quantity", 4),
        Field("ytd", 4),
        Field("order_cnt", 4),
        Field("pad", 52, "bytes"),
    ]
)
_ORDERS = RecordCodec(
    [
        Field("c_id", 4),
        Field("carrier", 1),
        Field("ol_cnt", 1),
        Field("status", 1),
        Field("pad", 25, "bytes"),
    ]
)
_ORDER_LINE = RecordCodec(
    [
        Field("item", 4),
        Field("supply_w", 4),
        Field("qty", 4),
        Field("amount", 4),
        Field("pad", 24, "bytes"),
    ]
)


class TpccWorkload(Workload):
    """Scaled TPC-C over warehouse-partitioned nodes."""

    name = "tpcc"

    def __init__(
        self,
        warehouses: int,
        n_nodes: int,
        districts_per_warehouse: int = 2,
        customers_per_district: int = 400,
        items: int = 1000,
        order_ring: int = 150,
        max_order_lines: int = 5,
        remote_line_pct: float = 10.0,
        remote_customer_pct: float = 15.0,
    ) -> None:
        if warehouses < n_nodes:
            raise ValueError("need at least one warehouse per node")
        self.warehouses = warehouses
        self.n_nodes = n_nodes
        self.dpw = districts_per_warehouse
        self.cpd = customers_per_district
        self.items = items
        self.ring = order_ring
        self.max_ol = max_order_lines
        self.remote_line_pct = remote_line_pct
        self.remote_customer_pct = remote_customer_pct

    # -- key encodings (composite keys packed into u64) -------------------------------

    def wh_key(self, w: int) -> int:
        return w + 1

    def district_key(self, w: int, d: int) -> int:
        return (w * self.dpw + d) + 1

    def customer_key(self, w: int, d: int, c: int) -> int:
        return ((w * self.dpw + d) * self.cpd + c) + 1

    def item_key(self, i: int) -> int:
        return i + 1

    def stock_key(self, w: int, i: int) -> int:
        return (w * self.items + i) + 1

    def order_key(self, w: int, d: int, slot: int) -> int:
        return ((w * self.dpw + d) * self.ring + slot) + 1

    def order_line_key(self, w: int, d: int, slot: int, line: int) -> int:
        return (((w * self.dpw + d) * self.ring + slot) * self.max_ol + line) + 1

    # -- schema / loading -----------------------------------------------------------------

    def schema(self) -> list[tuple[str, RecordCodec]]:
        return [
            ("warehouse", _WAREHOUSE),
            ("district", _DISTRICT),
            ("customer", _CUSTOMER),
            ("item", _ITEM),
            ("stock", _STOCK),
            ("orders", _ORDERS),
            ("order_line", _ORDER_LINE),
        ]

    def accessed_fraction(self, n_nodes: int) -> float:
        """A node touches its own warehouses, the (shared, small) item
        table, and the ~10–15% remote rows of cross-warehouse work."""
        return min(1.0, 1.5 / n_nodes)

    def load(self, engine: Engine, rng: WorkloadRng) -> None:
        def warehouses():
            for w in range(self.warehouses):
                yield self.wh_key(w), {"ytd": 0, "pad": b"w" * 80}

        def districts():
            for w in range(self.warehouses):
                for d in range(self.dpw):
                    yield self.district_key(w, d), {
                        "next_o_id": 1,
                        "ytd": 0,
                        "pad": b"d" * 80,
                    }

        def customers():
            for w in range(self.warehouses):
                for d in range(self.dpw):
                    for c in range(self.cpd):
                        yield self.customer_key(w, d, c), {
                            "balance": 1000,
                            "payments": 0,
                            "pad": b"c" * 120,
                        }

        def items():
            for i in range(self.items):
                yield self.item_key(i), {
                    "price": 100 + i % 900,
                    "name": b"item" * 6,
                    "pad": b"i" * 26,
                }

        def stock():
            for w in range(self.warehouses):
                for i in range(self.items):
                    yield self.stock_key(w, i), {
                        "quantity": 50,
                        "ytd": 0,
                        "order_cnt": 0,
                        "pad": b"s" * 52,
                    }

        def orders():
            for w in range(self.warehouses):
                for d in range(self.dpw):
                    for slot in range(self.ring):
                        yield self.order_key(w, d, slot), {
                            "c_id": slot % self.cpd,
                            "carrier": 0,
                            "ol_cnt": self.max_ol,
                            "status": 1,
                            "pad": b"o" * 25,
                        }

        def order_lines():
            for w in range(self.warehouses):
                for d in range(self.dpw):
                    for slot in range(self.ring):
                        for line in range(self.max_ol):
                            yield self.order_line_key(w, d, slot, line), {
                                "item": (slot + line) % self.items,
                                "supply_w": w,
                                "qty": 5,
                                "amount": 500,
                                "pad": b"l" * 24,
                            }

        load_tables(
            engine,
            [
                ("warehouse", _WAREHOUSE, warehouses()),
                ("district", _DISTRICT, districts()),
                ("customer", _CUSTOMER, customers()),
                ("item", _ITEM, items()),
                ("stock", _STOCK, stock()),
                ("orders", _ORDERS, orders()),
                ("order_line", _ORDER_LINE, order_lines()),
            ],
        )

    # -- transactions -------------------------------------------------------------------------

    def home_warehouse(self, rng: WorkloadRng, node_index: int) -> int:
        """A warehouse owned by this node."""
        owned = [w for w in range(self.warehouses) if w % self.n_nodes == node_index]
        return rng.choice(owned)

    def _remote_warehouse(self, rng: WorkloadRng, home: int) -> int:
        if self.warehouses == 1:
            return home
        while True:
            w = rng.uniform_int(0, self.warehouses - 1)
            if w != home:
                return w

    def txn_ops(self, rng: WorkloadRng, node_index: int, _shared_pct: float) -> list[Op]:
        """One transaction from the standard mix as an Op list.

        ``shared_pct`` is ignored: TPC-C's sharing degree is intrinsic
        (cross-warehouse touches), as in the paper.
        """
        kind = rng.weighted_choice(
            [name for name, _ in TPCC_MIX], [weight for _, weight in TPCC_MIX]
        )
        return getattr(self, f"_ops_{kind}")(rng, node_index)

    def _ops_new_order(self, rng: WorkloadRng, node_index: int) -> list[Op]:
        w = self.home_warehouse(rng, node_index)
        d = rng.uniform_int(0, self.dpw - 1)
        slot = rng.uniform_int(0, self.ring - 1)
        ops = [
            Op("select", "warehouse", self.wh_key(w)),
            Op(
                "update",
                "district",
                self.district_key(w, d),
                field="next_o_id",
                value=rng.uniform_int(1, 1 << 30),
            ),
            Op(
                "update",
                "orders",
                self.order_key(w, d, slot),
                field="c_id",
                value=rng.uniform_int(0, self.cpd - 1),
            ),
        ]
        n_lines = rng.uniform_int(2, self.max_ol)
        for line in range(n_lines):
            item = rng.uniform_int(0, self.items - 1)
            supply_w = w
            if rng.random() * 100.0 < self.remote_line_pct:
                supply_w = self._remote_warehouse(rng, w)
            ops.append(Op("select", "item", self.item_key(item)))
            ops.append(
                Op(
                    "update",
                    "stock",
                    self.stock_key(supply_w, item),
                    field="quantity",
                    value=rng.uniform_int(10, 100),
                )
            )
            ops.append(
                Op(
                    "update",
                    "order_line",
                    self.order_line_key(w, d, slot, line),
                    field="qty",
                    value=rng.uniform_int(1, 10),
                )
            )
        return ops

    def _ops_payment(self, rng: WorkloadRng, node_index: int) -> list[Op]:
        w = self.home_warehouse(rng, node_index)
        d = rng.uniform_int(0, self.dpw - 1)
        c_w, c_d = w, d
        if rng.random() * 100.0 < self.remote_customer_pct:
            c_w = self._remote_warehouse(rng, w)
            c_d = rng.uniform_int(0, self.dpw - 1)
        c = rng.uniform_int(0, self.cpd - 1)
        return [
            Op("update", "warehouse", self.wh_key(w), field="ytd", value=rng.uniform_int(1, 1 << 30)),
            Op("update", "district", self.district_key(w, d), field="ytd", value=rng.uniform_int(1, 1 << 30)),
            Op("select", "customer", self.customer_key(c_w, c_d, c)),
            Op(
                "update",
                "customer",
                self.customer_key(c_w, c_d, c),
                field="balance",
                value=rng.uniform_int(0, 1 << 30),
            ),
        ]

    def _ops_order_status(self, rng: WorkloadRng, node_index: int) -> list[Op]:
        w = self.home_warehouse(rng, node_index)
        d = rng.uniform_int(0, self.dpw - 1)
        c = rng.uniform_int(0, self.cpd - 1)
        slot = rng.uniform_int(0, self.ring - 1)
        return [
            Op("select", "customer", self.customer_key(w, d, c)),
            Op("select", "orders", self.order_key(w, d, slot)),
            Op(
                "range",
                "order_line",
                self.order_line_key(w, d, slot, 0),
                count=self.max_ol,
            ),
        ]

    def _ops_delivery(self, rng: WorkloadRng, node_index: int) -> list[Op]:
        w = self.home_warehouse(rng, node_index)
        ops: list[Op] = []
        for d in range(self.dpw):
            slot = rng.uniform_int(0, self.ring - 1)
            ops.append(
                Op(
                    "update",
                    "orders",
                    self.order_key(w, d, slot),
                    field="carrier",
                    value=rng.uniform_int(1, 10),
                )
            )
            ops.append(
                Op(
                    "update",
                    "customer",
                    self.customer_key(w, d, rng.uniform_int(0, self.cpd - 1)),
                    field="balance",
                    value=rng.uniform_int(0, 1 << 30),
                )
            )
        return ops

    def _ops_stock_level(self, rng: WorkloadRng, node_index: int) -> list[Op]:
        w = self.home_warehouse(rng, node_index)
        d = rng.uniform_int(0, self.dpw - 1)
        ops = [Op("select", "district", self.district_key(w, d))]
        for _ in range(5):
            ops.append(
                Op("select", "stock", self.stock_key(w, rng.uniform_int(0, self.items - 1)))
            )
        return ops

    def is_new_order(self, ops: list[Op]) -> bool:
        """Crude classifier used to report TpmC (NewOrder throughput)."""
        return any(op.table == "order_line" and op.kind == "update" for op in ops)

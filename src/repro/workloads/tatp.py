"""TATP (Telecom Application Transaction Processing) for Table 3.

The standard seven-transaction mix over subscriber data, fully
partitioned by subscriber id across nodes — "no data sharing at all"
(§4.4), so any PolarCXLMem advantage here is pure memory pooling.

Call-forwarding insert/delete are modeled as activation-flag updates on
preallocated rows (the standard trick for fixed-schema TATP kits, and
consistent with this reproduction's no-shared-SMO rule).
"""

from __future__ import annotations

from ..db.engine import Engine
from ..db.record import Field, RecordCodec
from ..sim.rng import WorkloadRng
from .base import Op, Workload, load_tables

__all__ = ["TatpWorkload", "TATP_MIX"]

TATP_MIX = (
    ("get_subscriber_data", 35),
    ("get_new_destination", 10),
    ("get_access_data", 35),
    ("update_subscriber_data", 2),
    ("update_location", 14),
    ("insert_call_forwarding", 2),
    ("delete_call_forwarding", 2),
)

_AI_PER_SUB = 4
_SF_PER_SUB = 4
_CF_PER_SF = 3

_SUBSCRIBER = RecordCodec(
    [
        Field("bit1", 1),
        Field("vlr_location", 4),
        Field("sub_nbr", 15, "bytes"),
        Field("pad", 44, "bytes"),
    ]
)
_ACCESS_INFO = RecordCodec(
    [Field("data1", 1), Field("data2", 1), Field("pad", 40, "bytes")]
)
_SPECIAL_FACILITY = RecordCodec(
    [Field("is_active", 1), Field("data_a", 1), Field("pad", 40, "bytes")]
)
_CALL_FORWARDING = RecordCodec(
    [
        Field("active", 1),
        Field("start_time", 1),
        Field("end_time", 1),
        Field("numberx", 15, "bytes"),
        Field("pad", 20, "bytes"),
    ]
)


class TatpWorkload(Workload):
    """TATP partitioned by subscriber ranges across nodes."""

    name = "tatp"

    def __init__(self, subscribers_per_node: int, n_nodes: int) -> None:
        if subscribers_per_node < 10:
            raise ValueError("need at least 10 subscribers per node")
        self.subscribers_per_node = subscribers_per_node
        self.n_nodes = n_nodes
        self.population = subscribers_per_node * n_nodes

    # -- key encodings ---------------------------------------------------------------

    def sub_key(self, s: int) -> int:
        return s + 1

    def ai_key(self, s: int, ai: int) -> int:
        return (s * _AI_PER_SUB + ai) + 1

    def sf_key(self, s: int, sf: int) -> int:
        return (s * _SF_PER_SUB + sf) + 1

    def cf_key(self, s: int, sf: int, slot: int) -> int:
        return ((s * _SF_PER_SUB + sf) * _CF_PER_SF + slot) + 1

    # -- schema / loading ---------------------------------------------------------------

    def schema(self) -> list[tuple[str, RecordCodec]]:
        return [
            ("subscriber", _SUBSCRIBER),
            ("access_info", _ACCESS_INFO),
            ("special_facility", _SPECIAL_FACILITY),
            ("call_forwarding", _CALL_FORWARDING),
        ]

    def accessed_fraction(self, n_nodes: int) -> float:
        """Perfectly partitioned: one subscriber-range per node."""
        return 1.0 / n_nodes

    def load(self, engine: Engine, rng: WorkloadRng) -> None:
        def subscribers():
            for s in range(self.population):
                yield self.sub_key(s), {
                    "bit1": s % 2,
                    "vlr_location": s,
                    "sub_nbr": f"{s:015d}".encode(),
                    "pad": b"s" * 44,
                }

        def access_info():
            for s in range(self.population):
                for ai in range(_AI_PER_SUB):
                    yield self.ai_key(s, ai), {
                        "data1": ai,
                        "data2": s % 256,
                        "pad": b"a" * 40,
                    }

        def special_facility():
            for s in range(self.population):
                for sf in range(_SF_PER_SUB):
                    yield self.sf_key(s, sf), {
                        "is_active": 1 if sf == 0 else s % 2,
                        "data_a": sf,
                        "pad": b"f" * 40,
                    }

        def call_forwarding():
            for s in range(self.population):
                for sf in range(_SF_PER_SUB):
                    for slot in range(_CF_PER_SF):
                        yield self.cf_key(s, sf, slot), {
                            "active": 1 if slot == 0 else 0,
                            "start_time": slot * 8,
                            "end_time": slot * 8 + 7,
                            "numberx": f"{s:015d}".encode(),
                            "pad": b"c" * 20,
                        }

        load_tables(
            engine,
            [
                ("subscriber", _SUBSCRIBER, subscribers()),
                ("access_info", _ACCESS_INFO, access_info()),
                ("special_facility", _SPECIAL_FACILITY, special_facility()),
                ("call_forwarding", _CALL_FORWARDING, call_forwarding()),
            ],
        )

    # -- transactions --------------------------------------------------------------------

    def _own_subscriber(self, rng: WorkloadRng, node_index: int) -> int:
        base = node_index * self.subscribers_per_node
        return base + rng.uniform_int(0, self.subscribers_per_node - 1)

    def txn_ops(self, rng: WorkloadRng, node_index: int, _shared_pct: float) -> list[Op]:
        """One TATP transaction as an Op list (``shared_pct`` ignored —
        TATP is fully partitioned)."""
        kind = rng.weighted_choice(
            [name for name, _ in TATP_MIX], [weight for _, weight in TATP_MIX]
        )
        return getattr(self, f"_ops_{kind}")(rng, node_index)

    def _ops_get_subscriber_data(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        return [Op("select", "subscriber", self.sub_key(s))]

    def _ops_get_new_destination(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        sf = rng.uniform_int(0, _SF_PER_SUB - 1)
        return [
            Op("select", "special_facility", self.sf_key(s, sf)),
            Op(
                "select",
                "call_forwarding",
                self.cf_key(s, sf, rng.uniform_int(0, _CF_PER_SF - 1)),
            ),
        ]

    def _ops_get_access_data(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        return [
            Op(
                "select",
                "access_info",
                self.ai_key(s, rng.uniform_int(0, _AI_PER_SUB - 1)),
            )
        ]

    def _ops_update_subscriber_data(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        sf = rng.uniform_int(0, _SF_PER_SUB - 1)
        return [
            Op("update", "subscriber", self.sub_key(s), field="bit1", value=rng.uniform_int(0, 1)),
            Op(
                "update",
                "special_facility",
                self.sf_key(s, sf),
                field="data_a",
                value=rng.uniform_int(0, 255),
            ),
        ]

    def _ops_update_location(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        return [
            Op(
                "update",
                "subscriber",
                self.sub_key(s),
                field="vlr_location",
                value=rng.uniform_int(0, 1 << 30),
            )
        ]

    def _ops_insert_call_forwarding(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        sf = rng.uniform_int(0, _SF_PER_SUB - 1)
        slot = rng.uniform_int(0, _CF_PER_SF - 1)
        return [
            Op("select", "subscriber", self.sub_key(s)),
            Op("select", "special_facility", self.sf_key(s, sf)),
            Op("update", "call_forwarding", self.cf_key(s, sf, slot), field="active", value=1),
        ]

    def _ops_delete_call_forwarding(self, rng, node_index) -> list[Op]:
        s = self._own_subscriber(rng, node_index)
        sf = rng.uniform_int(0, _SF_PER_SUB - 1)
        slot = rng.uniform_int(0, _CF_PER_SF - 1)
        return [
            Op("update", "call_forwarding", self.cf_key(s, sf, slot), field="active", value=0),
        ]

"""Sysbench OLTP workloads (the paper's primary benchmark).

Standard ``sbtest`` schema — ``id`` u64 primary key, ``k`` u32, ``c``
char(120), ``pad`` char(60) — with the classic mixes:

=============== =====================================================
mix             one transaction
=============== =====================================================
point_select    1 point SELECT (sysbench counts each as one query)
range_select    1 range SELECT of ``range_size`` rows
read_only       10 point SELECTs + 4 range SELECTs
read_write      read_only + 2 UPDATEs + 1 DELETE + 1 INSERT (18 q)
write_only      2 UPDATEs + 1 DELETE + 1 INSERT (4 queries)
point_update    10 point UPDATEs (the paper's sharing workload, §4.4)
=============== =====================================================

For multi-primary sharing runs the tables follow the paper's
N+1-group layout: one private table per node plus one shared table; a
query goes to the shared table with probability ``shared_pct``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..db.engine import Engine
from ..db.record import Field, RecordCodec
from ..sim.latency import CostModel
from ..sim.rng import WorkloadRng
from .base import Op, TxnStats, Workload, load_tables

__all__ = ["SysbenchWorkload", "SYSBENCH_CODEC", "SYSBENCH_MIXES"]

SYSBENCH_CODEC = RecordCodec(
    [
        Field("id", 8),
        Field("k", 4),
        Field("c", 120, "bytes"),
        Field("pad", 60, "bytes"),
    ]
)

SYSBENCH_MIXES = (
    "point_select",
    "range_select",
    "read_only",
    "read_write",
    "write_only",
    "point_update",
)

_ROW_WIRE_BYTES = 200  # one row on the client wire


class SysbenchWorkload(Workload):
    """Sysbench over one or more ``sbtest`` tables."""

    name = "sysbench"

    def __init__(
        self,
        rows: int = 20_000,
        range_size: int = 100,
        key_dist: str = "uniform",
        zipf_theta: float = 0.8,
        cost: Optional[CostModel] = None,
        n_nodes: int = 0,
        with_k_index: bool = False,
    ) -> None:
        """``n_nodes > 0`` switches to the sharing layout (N private
        tables + 1 shared); 0 means a single ``sbtest1`` table.

        ``with_k_index`` maintains sysbench's secondary index on ``k``
        (single-primary mode only: index SMOs allocate pages, which is
        a single-primary operation in this reproduction).
        """
        if rows < 10:
            raise ValueError("need at least 10 rows")
        if key_dist not in ("uniform", "zipf"):
            raise ValueError(f"unknown key distribution {key_dist!r}")
        if with_k_index and n_nodes > 0:
            raise ValueError("the k index is supported in single-primary mode")
        self.rows = rows
        self.range_size = range_size
        self.key_dist = key_dist
        self.zipf_theta = zipf_theta
        self.cost = cost or CostModel()
        self.n_nodes = n_nodes
        self.with_k_index = with_k_index

    # -- schema / loading -------------------------------------------------------------

    def table_names(self) -> list[str]:
        if self.n_nodes <= 0:
            return ["sbtest1"]
        private = [f"sbtest_private_{i}" for i in range(self.n_nodes)]
        return private + ["sbtest_shared"]

    def schema(self) -> list[tuple]:
        if self.with_k_index:
            return [(name, SYSBENCH_CODEC, ("k",)) for name in self.table_names()]
        return [(name, SYSBENCH_CODEC) for name in self.table_names()]

    def accessed_fraction(self, n_nodes: int) -> float:
        """Each node touches its private table plus the shared one."""
        if self.n_nodes <= 0:
            return 1.0
        return 2.0 / (self.n_nodes + 1)

    def load(self, engine: Engine, rng: WorkloadRng) -> None:
        def rows_for(_table: str):
            for key in range(1, self.rows + 1):
                yield key, self._row(key, rng)

        index_fields = ("k",) if self.with_k_index else ()
        load_tables(
            engine,
            [
                (name, SYSBENCH_CODEC, rows_for(name), index_fields)
                for name in self.table_names()
            ],
        )

    @staticmethod
    def _row(key: int, rng: WorkloadRng) -> dict:
        return {
            "id": key,
            "k": key % 4096,
            "c": bytes(f"c-{key:017d}", "ascii") * 6,
            "pad": bytes(f"p-{key:08d}", "ascii") * 6,
        }

    # -- key selection ------------------------------------------------------------------

    def pick_key(self, rng: WorkloadRng) -> int:
        if self.key_dist == "zipf":
            return 1 + rng.zipf(self.rows, self.zipf_theta)
        return rng.uniform_int(1, self.rows)

    def _range_start(self, rng: WorkloadRng) -> int:
        upper = max(1, self.rows - self.range_size)
        return rng.uniform_int(1, upper)

    # -- single-node functional transactions ------------------------------------------------

    def txn_fn(self, mix: str) -> Callable[[Engine, WorkloadRng], TxnStats]:
        try:
            return getattr(self, f"txn_{mix}")
        except AttributeError:
            raise ValueError(f"unknown sysbench mix {mix!r}") from None

    def txn_point_select(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        self._point_select(engine, rng)
        return TxnStats(queries=1)

    def txn_range_select(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        self._range_select(engine, rng)
        return TxnStats(queries=1)

    def txn_read_only(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        for _ in range(10):
            self._point_select(engine, rng)
        for _ in range(4):
            self._range_select(engine, rng)
        return TxnStats(queries=14)

    def txn_read_write(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        txn = engine.begin()
        for _ in range(10):
            self._point_select(engine, rng)
        for _ in range(4):
            self._range_select(engine, rng)
        self._update_index(engine, rng)
        self._update_non_index(engine, rng)
        self._delete_insert(engine, rng)
        txn.commit()
        return TxnStats(queries=18, writes=4)

    def txn_write_only(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        txn = engine.begin()
        self._update_index(engine, rng)
        self._update_non_index(engine, rng)
        self._delete_insert(engine, rng)
        txn.commit()
        return TxnStats(queries=4, writes=4)

    def txn_point_update(self, engine: Engine, rng: WorkloadRng) -> TxnStats:
        txn = engine.begin()
        for _ in range(10):
            self._update_index(engine, rng)
        txn.commit()
        return TxnStats(queries=10, writes=10)

    # -- query primitives ---------------------------------------------------------------------

    def _table(self, engine: Engine):
        return engine.tables["sbtest1"]

    def _charge_query(self, engine: Engine, result_bytes: int) -> None:
        engine.meter.charge_ns(self.cost.query_fixed_ns)
        if result_bytes:
            engine.meter.charge_transfer("client", result_bytes)

    def _point_select(self, engine: Engine, rng: WorkloadRng) -> None:
        mtr = engine.mtr()
        row = self._table(engine).get(mtr, self.pick_key(rng))
        mtr.commit()
        self._charge_query(engine, _ROW_WIRE_BYTES if row else 0)

    def _range_select(self, engine: Engine, rng: WorkloadRng) -> None:
        mtr = engine.mtr()
        rows = self._table(engine).range(
            mtr, self._range_start(rng), self.range_size
        )
        mtr.commit()
        engine.meter.charge_ns(self.cost.range_row_ns * len(rows))
        self._charge_query(engine, _ROW_WIRE_BYTES * len(rows))

    def _update_index(self, engine: Engine, rng: WorkloadRng) -> None:
        mtr = engine.mtr()
        self._table(engine).update_field(
            mtr, self.pick_key(rng), "k", rng.uniform_int(0, 4095)
        )
        mtr.commit()
        self._charge_query(engine, 0)

    def _update_non_index(self, engine: Engine, rng: WorkloadRng) -> None:
        mtr = engine.mtr()
        self._table(engine).update_field(
            mtr, self.pick_key(rng), "c", rng.bytes(120)
        )
        mtr.commit()
        self._charge_query(engine, 0)

    def _delete_insert(self, engine: Engine, rng: WorkloadRng) -> None:
        key = self.pick_key(rng)
        table = self._table(engine)
        mtr = engine.mtr()
        existed = table.delete(mtr, key)
        mtr.commit()
        self._charge_query(engine, 0)
        mtr = engine.mtr()
        if existed:
            table.insert(mtr, key, self._row(key, rng))
        mtr.commit()
        self._charge_query(engine, 0)

    # -- multi-primary (sharing) transactions ----------------------------------------------------

    def _sharing_table(
        self, rng: WorkloadRng, node_index: int, shared_pct: float
    ) -> str:
        if self.n_nodes <= 0:
            raise RuntimeError("construct with n_nodes > 0 for sharing mode")
        if rng.random() * 100.0 < shared_pct:
            return "sbtest_shared"
        return f"sbtest_private_{node_index}"

    def sharing_txn_point_update(
        self, rng: WorkloadRng, node_index: int, shared_pct: float
    ) -> list[Op]:
        """10 point updates per transaction (paper §4.4)."""
        return [
            Op(
                "update",
                self._sharing_table(rng, node_index, shared_pct),
                self.pick_key(rng),
                field="k",
                value=rng.uniform_int(0, 4095),
            )
            for _ in range(10)
        ]

    def sharing_txn_read_write(
        self, rng: WorkloadRng, node_index: int, shared_pct: float
    ) -> list[Op]:
        """Read-write adapted for sharing: 10 selects + 4 ranges + 4
        updates. Sysbench's delete+insert pair becomes two more updates
        because page allocation is a single-primary operation in this
        reproduction (DESIGN.md §6) — the write volume is preserved."""
        ops: list[Op] = []
        for _ in range(10):
            ops.append(
                Op(
                    "select",
                    self._sharing_table(rng, node_index, shared_pct),
                    self.pick_key(rng),
                )
            )
        for _ in range(4):
            ops.append(
                Op(
                    "range",
                    self._sharing_table(rng, node_index, shared_pct),
                    self._range_start(rng),
                    count=self.range_size,
                )
            )
        for _ in range(4):
            ops.append(
                Op(
                    "update",
                    self._sharing_table(rng, node_index, shared_pct),
                    self.pick_key(rng),
                    field="k",
                    value=rng.uniform_int(0, 4095),
                )
            )
        return ops

    def sharing_txn_fn(self, mix: str):
        if mix == "point_update":
            return self.sharing_txn_point_update
        if mix == "read_write":
            return self.sharing_txn_read_write
        raise ValueError(f"unsupported sharing mix {mix!r}")

"""Workloads: sysbench, TPC-C, TATP, and the simulation drivers."""

from .base import Op, TxnStats, Workload, load_tables
from .driver import InstanceCtx, PoolingDriver, RunResult, SharingDriver
from .sysbench import SYSBENCH_CODEC, SYSBENCH_MIXES, SysbenchWorkload
from .tatp import TATP_MIX, TatpWorkload
from .tpcc import TPCC_MIX, TpccWorkload

__all__ = [
    "Op",
    "TxnStats",
    "Workload",
    "load_tables",
    "InstanceCtx",
    "PoolingDriver",
    "RunResult",
    "SharingDriver",
    "SYSBENCH_CODEC",
    "SYSBENCH_MIXES",
    "SysbenchWorkload",
    "TATP_MIX",
    "TatpWorkload",
    "TPCC_MIX",
    "TpccWorkload",
]

"""Workload plumbing shared by sysbench, TPC-C and TATP.

Workloads drive the engine in two modes:

* **single-node** — a functional transaction callable executed by the
  pooling/recovery driver; it performs engine operations (which charge
  the meter) and reports how many queries it issued.
* **multi-primary (sharing)** — a transaction is a list of :class:`Op`
  records dispatched through :class:`~repro.core.sharing.MultiPrimaryNode`
  generators, so distributed locks and coherency run in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..db.engine import Engine
from ..db.record import RecordCodec
from ..sim.rng import WorkloadRng

__all__ = ["Op", "TxnStats", "Workload", "load_tables"]


@dataclass(frozen=True)
class Op:
    """One sharing-mode operation."""

    kind: str  # "select" | "update" | "range"
    table: str
    key: int
    field: Optional[str] = None
    value: Any = None
    count: int = 0  # rows, for range ops


@dataclass
class TxnStats:
    """What one functional transaction did."""

    queries: int = 0
    writes: int = 0


class Workload:
    """Base class; subclasses fill in schema/load and transaction mixes."""

    name = "workload"

    def schema(self) -> list[tuple[str, RecordCodec]]:
        raise NotImplementedError

    def load(self, engine: Engine, rng: WorkloadRng) -> None:
        raise NotImplementedError

    def accessed_fraction(self, n_nodes: int) -> float:
        """Fraction of the whole dataset one node touches.

        The paper sizes each RDMA node's LBP as a percentage of "the
        node's accessed dataset" (§4.4) — partition-aware workloads
        touch far less than everything.
        """
        return 1.0


def load_tables(
    engine: Engine,
    rows_by_table: Sequence[tuple],
    checkpoint: bool = True,
) -> None:
    """Create tables and bulk-insert rows on a loader engine.

    Entries are ``(name, codec, rows)`` with an optional fourth element
    of secondary-index fields. Rows are inserted in key order (fast,
    split-friendly) inside batched mini-transactions; a final checkpoint
    makes everything durable so shared/recovered engines can start from
    storage.
    """
    for entry in rows_by_table:
        name, codec, rows = entry[0], entry[1], entry[2]
        index_fields = entry[3] if len(entry) > 3 else ()
        table = engine.create_table(name, codec, index_fields=index_fields)
        batch = 0
        mtr = engine.mtr()
        for key, row in rows:
            table.insert(mtr, key, row)
            batch += 1
            if batch >= 64:
                mtr.commit()
                engine.redo_log.flush()
                mtr = engine.mtr()
                batch = 0
        mtr.commit()
        engine.redo_log.flush()
    if checkpoint:
        engine.checkpoint()

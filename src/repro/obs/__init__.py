"""Observability: structured trace events, mechanism counters, invariants.

The paper's headline claims are *counts*, not just latencies — lines
flushed instead of pages, redo records skipped instead of replayed,
line-granular instead of page-granular interconnect bytes. This package
makes those counts first-class:

* :mod:`repro.obs.trace` — a :class:`Tracer` of structured events in
  bounded per-subsystem ring buffers, installed globally exactly like
  the fault injector (one global load + ``None`` check when disabled).
* :mod:`repro.obs.counters` — a :class:`CounterRegistry` of named
  counters and histograms, owned by the tracer.
* :mod:`repro.obs.invariants` — a trace-driven checker replaying an
  event stream and asserting coherency-protocol safety properties.
"""

from .counters import CounterRegistry, Histogram
from .invariants import (
    InvariantViolationError,
    TraceInvariantChecker,
    Violation,
    assert_trace_invariants,
    check_events,
)
from .trace import TraceEvent, Tracer, active, install, uninstall

__all__ = [
    "CounterRegistry",
    "Histogram",
    "InvariantViolationError",
    "TraceEvent",
    "TraceInvariantChecker",
    "Tracer",
    "Violation",
    "active",
    "assert_trace_invariants",
    "check_events",
    "install",
    "uninstall",
]

"""Observability: trace events, counters, causal spans, invariants.

The paper's headline claims are *counts* and *latency attributions* —
lines flushed instead of pages, redo records skipped instead of
replayed, and which mechanism each nanosecond of commit latency went
to. This package makes both first-class:

* :mod:`repro.obs.trace` — a :class:`Tracer` of structured events in
  bounded per-subsystem ring buffers, installed globally exactly like
  the fault injector (one global load + ``None`` check when disabled).
* :mod:`repro.obs.counters` — a :class:`CounterRegistry` of named
  counters and histograms, owned by the tracer.
* :mod:`repro.obs.spans` — a :class:`SpanTracer` of begin/end spans in
  simulated time with parent→child causality and mechanism kinds,
  installed through the same global-hook pattern.
* :mod:`repro.obs.critical_path` — per-transaction self-time vs
  child-time decomposition of span trees into mechanism buckets.
* :mod:`repro.obs.export` — Chrome-trace JSON (Perfetto) and CSV
  summaries of recorded spans.
* :mod:`repro.obs.invariants` — checkers replaying a trace (protocol
  safety) or a span list (balance/nesting, crash abandonment).
* :mod:`repro.obs.metrics` — a :class:`MetricsPipeline` of labeled
  live time series (windowed rates, window-exact percentiles, sampled
  gauges) scraped on a sim-time interval, same global-hook pattern.
* :mod:`repro.obs.slo` — :class:`SLOMonitor` multi-window burn-rate
  alerting and per-entity :class:`HealthTimeline` derivation over the
  scraped series.
"""

from .counters import CounterRegistry, Histogram
from .critical_path import MechanismBreakdown, UNATTRIBUTED, summarize
from .export import to_chrome_trace, write_chrome_trace, write_csv_summary
from .invariants import (
    InvariantViolationError,
    SpanCheckStats,
    TraceInvariantChecker,
    Violation,
    assert_span_invariants,
    assert_trace_invariants,
    check_events,
    check_span_invariants,
)
from .metrics import (
    MetricsError,
    MetricsPipeline,
    ScrapeWindow,
    Series,
    series_id,
)
from .metrics import active as metrics_active
from .metrics import install as install_metrics
from .metrics import uninstall as uninstall_metrics
from .slo import (
    Alert,
    HealthInterval,
    HealthTimeline,
    SLObjective,
    SLOMonitor,
    check_alignment,
)
from .spans import (
    MECHANISM_KINDS,
    Span,
    SpanTracer,
    attached as span_attached,
)
from .spans import active as spans_active
from .spans import install as install_spans
from .spans import uninstall as uninstall_spans
from .trace import TraceEvent, Tracer, active, install, uninstall

__all__ = [
    "Alert",
    "CounterRegistry",
    "HealthInterval",
    "HealthTimeline",
    "Histogram",
    "InvariantViolationError",
    "MECHANISM_KINDS",
    "MechanismBreakdown",
    "MetricsError",
    "MetricsPipeline",
    "SLOMonitor",
    "SLObjective",
    "ScrapeWindow",
    "Series",
    "Span",
    "SpanCheckStats",
    "SpanTracer",
    "TraceEvent",
    "TraceInvariantChecker",
    "Tracer",
    "UNATTRIBUTED",
    "Violation",
    "active",
    "assert_span_invariants",
    "assert_trace_invariants",
    "check_alignment",
    "check_events",
    "check_span_invariants",
    "install",
    "install_metrics",
    "install_spans",
    "metrics_active",
    "series_id",
    "span_attached",
    "spans_active",
    "summarize",
    "to_chrome_trace",
    "uninstall",
    "uninstall_metrics",
    "uninstall_spans",
    "write_chrome_trace",
    "write_csv_summary",
]

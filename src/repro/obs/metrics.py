"""Live metrics: labeled sim-time series on a fixed scrape interval.

The pipeline is the live half of ``repro.obs``: where the tracer and
span tracer record *what happened* for post-hoc analysis, the metrics
pipeline answers *what did the fleet look like over time* — windowed
rates, window-exact percentiles, and sampled gauges, all stamped at
exact multiples of a **simulated-time** scrape interval.

Installation mirrors :mod:`repro.obs.trace`: one module global holds
the active pipeline and every instrumented site does

.. code-block:: python

    mp = metrics_active()
    if mp is not None:
        mp.gauge("pipe.backlog_ns", pipe.backlog_ns, pipe=pipe.name)

so a disabled pipeline costs one global load plus a ``None`` check.
Scrapes are *pulled* by whoever advances simulated time (the charge
settler, the fleet drivers) via :meth:`MetricsPipeline.maybe_scrape`;
the pipeline never advances the clock and never emits trace events, so
installing it cannot shift a byte-pinned availability timeline.

Three instrument kinds feed one series store:

* :meth:`~MetricsPipeline.count` — accumulated per scrape window and
  published as a rate in events/second. An idle window publishes a
  single zero sample after the last nonzero one (the "zero edge"),
  then goes silent, so series stay compact over quiet stretches.
* :meth:`~MetricsPipeline.observe` — window-exact p50/p99/p999 over the
  samples observed inside the window, published under a ``q`` label;
  empty windows publish nothing.
* :meth:`~MetricsPipeline.gauge` — last-value-wins levels, sampled at
  scrape time and published only when the value changed (the first
  scrape after an :meth:`~MetricsPipeline.anchor` always publishes).

Counter *sources* (:meth:`MetricsPipeline.add_counter_source`) adapt
the cumulative :class:`~repro.obs.counters.CounterRegistry` world:
each scrape diffs a snapshot against the previous one and feeds the
deltas through the rate path above.

Every scrape publishes complete values with single assignments — a
reader (or a crash sweep) can never observe torn half-published state;
:meth:`MetricsPipeline.check_consistent` asserts the published
invariants (strictly increasing stamps, finite values) after injected
crashes.
"""

from __future__ import annotations

import json
import math
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional

from ..sim.stats import percentile
from . import spans as _spans_mod
from . import trace as _trace_mod

__all__ = [
    "LabelItems",
    "MetricsError",
    "MetricsPipeline",
    "QUANTILES",
    "ScrapeWindow",
    "Series",
    "SeriesKey",
    "active",
    "install",
    "series_id",
    "suspended",
    "uninstall",
]

#: Sorted ``(key, value)`` pairs — the canonical form of a label set.
LabelItems = tuple[tuple[str, str], ...]
#: ``(name, labels)`` — how the pipeline indexes a series.
SeriesKey = tuple[str, LabelItems]

#: The quantiles every observation window publishes, as ``q`` labels.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p99", 99.0),
    ("p999", 99.9),
)


class MetricsError(Exception):
    """A published series violated the scrape invariants."""


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def series_id(name: str, labels: LabelItems) -> str:
    """Stable display id: ``name{k=v,...}`` with label keys sorted.

    >>> series_id("fleet.ops", (("node", "n0"), ("result", "ok")))
    'fleet.ops{node=n0,result=ok}'
    >>> series_id("obs.trace_dropped", ())
    'obs.trace_dropped'
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Series:
    """One labeled time series: ``(t_ns, value)`` samples in a bounded ring.

    Overflow drops the *oldest* sample and is counted in
    :attr:`dropped` rather than silently discarded — the same
    accounting discipline as the tracer's event rings.
    """

    __slots__ = ("name", "labels", "samples", "dropped", "_capacity")

    def __init__(self, name: str, labels: LabelItems, capacity: int) -> None:
        self.name = name
        self.labels = labels
        self.samples: deque[tuple[float, float]] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    @property
    def id(self) -> str:
        return series_id(self.name, self.labels)

    def add(self, t_ns: float, value: float) -> None:
        if len(self.samples) == self._capacity:
            self.dropped += 1
        self.samples.append((t_ns, value))

    def last(self) -> Optional[tuple[float, float]]:
        return self.samples[-1] if self.samples else None

    def values(self) -> list[float]:
        return [value for _, value in self.samples]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Series({self.id!r}, {len(self.samples)} samples)"


@dataclass(frozen=True)
class ScrapeWindow:
    """One scrape's windowed counts, handed to listeners (the SLO monitor).

    ``counts`` holds the raw per-window amounts (not rates) for every
    count-instrument series touched inside the window; untouched series
    are simply absent (an absent key is a zero).
    """

    t_ns: float
    counts: Mapping[SeriesKey, float]

    def total(self, name: str, label: Optional[tuple[str, str]] = None) -> float:
        """Sum of window counts for ``name``, optionally filtered to
        series carrying the given ``(key, value)`` label pair."""
        out = 0.0
        for (series_name, labels), amount in self.counts.items():
            if series_name != name:
                continue
            if label is not None and label not in labels:
                continue
            out += amount
        return out


@dataclass
class _CounterSource:
    """A cumulative snapshot scraped into windowed deltas."""

    prefix: str
    snapshot: Callable[[], Mapping[str, float]]
    labels: LabelItems
    previous: dict[str, float]


class MetricsPipeline:
    """Labeled series scraped at exact multiples of a sim-time interval.

    Used as a context manager, installation is scoped exactly like the
    tracer's:

    >>> with MetricsPipeline(scrape_interval_ns=100.0) as mp:
    ...     active() is mp
    ...     mp.count("ops", 3.0, node="n0")
    ...     mp.maybe_scrape(50.0)    # first call only aligns the clock
    ...     mp.maybe_scrape(250.0)   # catches up: scrapes at 100 and 200
    True
    0
    2
    >>> active() is None
    True
    >>> [(s.id, list(s.samples)) for s in mp.all_series()]
    [('ops{node=n0}', [(100.0, 30000000.0), (200.0, 0.0)])]
    """

    def __init__(
        self,
        scrape_interval_ns: float = 100_000.0,
        max_samples_per_series: int = 1 << 12,
    ) -> None:
        if scrape_interval_ns <= 0:
            raise ValueError("scrape interval must be positive")
        if max_samples_per_series <= 0:
            raise ValueError("series capacity must be positive")
        self.scrape_interval_ns = float(scrape_interval_ns)
        self.max_samples_per_series = max_samples_per_series
        self.epoch_ns = 0.0
        self.scrapes = 0
        self.samples_published = 0
        self._next_due_ns = -1.0  # < 0: not yet aligned to the grid
        self._series: dict[SeriesKey, Series] = {}
        self._gauges: dict[SeriesKey, float] = {}
        self._gauge_published: dict[SeriesKey, float] = {}
        self._window_counts: dict[SeriesKey, float] = {}
        self._rate_last: dict[SeriesKey, float] = {}
        self._window_samples: dict[SeriesKey, list[float]] = {}
        self._sources: list[_CounterSource] = []
        self._listeners: list[Callable[[ScrapeWindow], None]] = []

    # -- instruments (only reached when the pipeline is installed) ---------------

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a level; sampled at scrape time, published on change."""
        self._gauges[(name, _label_items(labels))] = float(value)

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Accumulate into the current window; published as a rate."""
        key = (name, _label_items(labels))
        self._window_counts[key] = self._window_counts.get(key, 0.0) + amount

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record a sample; published as window-exact p50/p99/p999."""
        key = (name, _label_items(labels))
        self._window_samples.setdefault(key, []).append(float(value))

    def add_counter_source(
        self,
        prefix: str,
        snapshot: Callable[[], Mapping[str, float]],
        **labels: object,
    ) -> None:
        """Scrape a cumulative counter snapshot into windowed rates.

        ``snapshot`` is called at every scrape; each key's increase
        since the previous scrape is credited to the window of series
        ``prefix + key`` carrying ``labels``.
        """
        self._sources.append(
            _CounterSource(prefix, snapshot, _label_items(labels), dict(snapshot()))
        )

    def add_listener(self, listener: Callable[[ScrapeWindow], None]) -> None:
        """Call ``listener`` with every :class:`ScrapeWindow`, even idle ones."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[ScrapeWindow], None]) -> None:
        """Detach a listener (scenarios attach a fresh monitor per run)."""
        self._listeners.remove(listener)

    # -- the scrape clock --------------------------------------------------------

    def maybe_scrape(self, now_ns: float) -> int:
        """Catch the pipeline up to ``now_ns``; returns scrapes taken.

        Whoever advances simulated time calls this. One scrape fires at
        every interval multiple in ``(last_due, now_ns]``, each stamped
        at its exact grid point — never at ``now_ns`` itself, so the
        published timeline is independent of *when* time advances were
        observed, only of what happened inside each window. The very
        first call only aligns the clock to the next grid point.
        """
        if now_ns < self._next_due_ns:
            return 0
        if self._next_due_ns < 0.0:
            self._next_due_ns = self._align_after(now_ns)
            return 0
        taken = 0
        while now_ns >= self._next_due_ns:
            self._scrape_at(self._next_due_ns)
            self._next_due_ns += self.scrape_interval_ns
            taken += 1
        return taken

    def anchor(self, now_ns: float) -> None:
        """Start a fresh measurement epoch at ``now_ns``.

        Discards partial windows (their samples belong to no epoch),
        forgets zero edges, re-baselines every counter source, and
        re-publishes every gauge at the next scrape. Drivers call this
        where they rebind the span clock.
        """
        self.epoch_ns = now_ns
        self._next_due_ns = self._align_after(now_ns)
        self._window_counts.clear()
        self._window_samples.clear()
        self._rate_last.clear()
        self._gauge_published.clear()
        for source in self._sources:
            source.previous = dict(source.snapshot())

    def set_scrape_interval(self, interval_ns: float, now_ns: float) -> None:
        """Change the interval mid-run.

        Catches up at the old width first, then re-anchors the grid
        (and the open windows) at ``now_ns`` — no window ever mixes two
        widths, so every published rate divides by the interval that
        actually covered it.
        """
        if interval_ns <= 0:
            raise ValueError("scrape interval must be positive")
        self.maybe_scrape(now_ns)
        self.scrape_interval_ns = float(interval_ns)
        self.anchor(now_ns)

    def flush(self, now_ns: float) -> None:
        """Final catch-up plus one closing scrape on the next grid point.

        Drains whatever partial window is open at end of run; the
        closing scrape stays on the grid so every stamp in the timeline
        remains an exact interval multiple.
        """
        self.maybe_scrape(now_ns)
        if self._next_due_ns < 0.0:
            self._next_due_ns = self._align_after(now_ns)
        self._scrape_at(self._next_due_ns)
        self._next_due_ns += self.scrape_interval_ns

    def _align_after(self, now_ns: float) -> float:
        """The first grid point strictly after ``now_ns``."""
        interval = self.scrape_interval_ns
        return math.floor(now_ns / interval + 1.0) * interval

    # -- one scrape --------------------------------------------------------------

    def _scrape_at(self, t_ns: float) -> None:
        window = self._window_counts
        self._window_counts = {}
        # Cumulative counter sources -> window deltas (sorted for a
        # deterministic publish order regardless of snapshot dict order).
        for source in self._sources:
            current = source.snapshot()
            previous = source.previous
            for counter_name in sorted(current):
                delta = float(current[counter_name]) - previous.get(counter_name, 0.0)
                if delta != 0.0:
                    key = (source.prefix + counter_name, source.labels)
                    window[key] = window.get(key, 0.0) + delta
            source.previous = dict(current)
        # Self-observation: drop/abandon accounting from the other hooks.
        self._scrape_obs()
        # Gauges: publish on change (or first publish this epoch).
        published = self._gauge_published
        for key, value in self._gauges.items():
            if key not in published or published[key] != value:
                self._publish(key, t_ns, value)
                published[key] = value
        # Rates: window count / interval, one zero edge after the last
        # nonzero sample, then silence until the next nonzero window.
        interval_s = self.scrape_interval_ns / 1e9
        for key, amount in window.items():
            rate = amount / interval_s
            if amount != 0.0 or self._rate_last.get(key, 0.0) != 0.0:
                self._publish(key, t_ns, rate)
                self._rate_last[key] = rate
        for key, last_rate in list(self._rate_last.items()):
            if last_rate != 0.0 and key not in window:
                self._publish(key, t_ns, 0.0)
                self._rate_last[key] = 0.0
        # Window-exact percentiles over this window's observations.
        samples = self._window_samples
        self._window_samples = {}
        for (name, labels), values in samples.items():
            values.sort()
            for q_label, q in QUANTILES:
                q_key = (name, tuple(sorted(labels + (("q", q_label),))))
                self._publish(q_key, t_ns, percentile(values, q))
        self.scrapes += 1
        frozen = ScrapeWindow(t_ns, window)
        for listener in self._listeners:
            listener(frozen)

    def _scrape_obs(self) -> None:
        """Surface the other hooks' drop accounting as gauges.

        Published lazily: a drop counter that never leaves zero creates
        no series, but once nonzero it is tracked (including back to
        zero after a ring clear) like any other gauge.
        """
        tracer = _trace_mod.active()
        if tracer is not None:
            self._gauge_nonzero("obs.trace_dropped", float(tracer.total_dropped))
        spans = _spans_mod.active()
        if spans is not None:
            self._gauge_nonzero("obs.spans_abandoned", float(spans.abandoned_total))
            self._gauge_nonzero("obs.span_costs_dropped", float(spans.dropped_costs))
        self._gauge_nonzero("obs.metrics_dropped", float(self.total_dropped))

    def _gauge_nonzero(self, name: str, value: float) -> None:
        key: SeriesKey = (name, ())
        if value != 0.0 or key in self._gauges:
            self._gauges[key] = value

    def _publish(self, key: SeriesKey, t_ns: float, value: float) -> None:
        series = self._series.get(key)
        if series is None:
            series = Series(key[0], key[1], self.max_samples_per_series)
            self._series[key] = series
        series.add(t_ns, round(value, 6))
        self.samples_published += 1

    # -- inspection --------------------------------------------------------------

    def all_series(self) -> list[Series]:
        """Every published series, ordered by ``(name, labels)``."""
        return [self._series[key] for key in sorted(self._series)]

    def get(self, name: str, **labels: object) -> Optional[Series]:
        return self._series.get((name, _label_items(labels)))

    @property
    def total_dropped(self) -> int:
        return sum(series.dropped for series in self._series.values())

    def check_consistent(self) -> None:
        """Assert no scrape published torn state.

        Every series must carry strictly increasing stamps and finite
        values. A scrape is a sequence of complete-value single
        assignments, so even an injected crash mid-run leaves every
        published sample whole — the fault sweeps call this after each
        crash to prove it.
        """
        for key in sorted(self._series):
            series = self._series[key]
            last_t = -math.inf
            for t_ns, value in series.samples:
                if t_ns <= last_t:
                    raise MetricsError(
                        f"{series.id}: non-monotonic stamp {t_ns} after {last_t}"
                    )
                if not (math.isfinite(t_ns) and math.isfinite(value)):
                    raise MetricsError(
                        f"{series.id}: non-finite sample ({t_ns}, {value})"
                    )
                last_t = t_ns

    def to_json(self) -> str:
        """Canonical JSON timeline — byte-stable for golden pinning."""
        ordered = self.all_series()
        payload = {
            "scrape_interval_ns": self.scrape_interval_ns,
            "scrapes": self.scrapes,
            "samples": self.samples_published,
            "dropped_samples": {s.id: s.dropped for s in ordered if s.dropped},
            "series": {s.id: [[t, v] for t, v in s.samples] for s in ordered},
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    # -- installation ------------------------------------------------------------

    def __enter__(self) -> "MetricsPipeline":
        install(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        uninstall(self)


_ACTIVE: Optional[MetricsPipeline] = None


def active() -> Optional[MetricsPipeline]:
    """The installed pipeline, or None (the common, fast case)."""
    return _ACTIVE


def install(pipeline: MetricsPipeline) -> MetricsPipeline:
    """Install the pipeline; instrumented call sites start feeding it."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not pipeline:
        raise RuntimeError("another MetricsPipeline is already installed")
    _ACTIVE = pipeline
    return pipeline


def uninstall(pipeline: Optional[MetricsPipeline] = None) -> None:
    """Remove the installed pipeline (idempotent).

    Passing the pipeline asserts you are removing the one you installed.
    """
    global _ACTIVE
    if pipeline is not None and _ACTIVE is not None and _ACTIVE is not pipeline:
        raise RuntimeError("a different MetricsPipeline is installed")
    _ACTIVE = None


@contextmanager
def suspended() -> Iterator[Optional[MetricsPipeline]]:
    """Deactivate the installed pipeline for the duration of the block.

    Sub-experiments that spin up their *own* simulator (the join-leave
    recovery baselines, for instance) must not publish into a pipeline
    anchored to the caller's clock — their stamps would interleave two
    timelines and break the strictly-monotonic-per-series invariant.
    The pipeline's scrape grid is untouched, so the caller's sampling
    resumes exactly where it left off.
    """
    global _ACTIVE
    pipeline = _ACTIVE
    _ACTIVE = None
    try:
        yield pipeline
    finally:
        _ACTIVE = pipeline

"""Causal span tracing: which mechanism each nanosecond went to.

The flat tracer (:mod:`repro.obs.trace`) answers *how many* — flushes,
RPCs, bytes moved. Spans answer *why a transaction took as long as it
did*: every span has a parent, a mechanism ``kind`` drawn from a small
taxonomy, and a duration in simulated nanoseconds, so
:mod:`repro.obs.critical_path` can decompose per-transaction commit
latency into per-mechanism buckets and
:mod:`repro.obs.export` can render the tree in Perfetto.

Installation mirrors :mod:`repro.obs.trace` exactly: one module global,
and every instrumented call site pays one global load plus a ``None``
check when tracing is disabled:

.. code-block:: python

    spans = spans_active()
    if spans is not None:
        span = spans.begin("mtr", "mtr", meter=engine.meter)

Mechanism kinds
---------------

``txn``, ``mtr``, ``page_fix``, ``lock_wait``, ``cxl_access``,
``cache_flush``, ``rpc``, ``wal_append``, ``pagestore_io``,
``recovery_phase`` — plus two derived kinds the attribution layer
introduces: ``pipe_wait`` (queueing delay beyond the charged service
time, recorded by :meth:`repro.sim.settle.ChargeSettler.settle`) and
``dram_access`` (line-cache charges on DRAM-mapped regions).

Two duration sources
--------------------

The simulator has no per-process hook, so a span can measure time two
ways and :meth:`SpanTracer.end` picks whichever applies:

* **wall** — ``t1 - t0`` from the attached simulated clock. Correct for
  spans that live across ``yield``s (transactions, lock waits).
* **charged** — the delta of the caller's :class:`AccessMeter` between
  begin and end (including the base latencies of transfer charges
  appended in between). Correct for spans that open and close inside a
  single synchronous segment, where no simulated time passes until the
  next :meth:`~repro.sim.settle.ChargeSettler.settle` turns the charges
  into a timeout.

A global *attach stack* provides parents for spans opened deep inside
engine code (an mtr span parents the WAL flush span, for example), and
collects fine-grained charges via :meth:`SpanTracer.add_ns` (memory
line fills, coherency flag reads) into the enclosing span's ``costs``
without allocating a span per access. Because workers interleave at
``yield`` boundaries, the stack is only valid *within* a synchronous
segment: spans that survive a ``yield`` must be created with
``push=False`` and re-attached around each synchronous segment with
:func:`attached`.

>>> tracer = SpanTracer()
>>> with tracer:
...     root = tracer.begin("txn", "transaction")
...     child = tracer.begin("mtr", "mtr")
...     child = tracer.end(child)
...     root = tracer.end(root)
>>> [(s.kind, s.parent_id) for s in tracer.spans()]
[('txn', None), ('mtr', 1)]
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

__all__ = [
    "MECHANISM_KINDS",
    "Span",
    "SpanTracer",
    "active",
    "attached",
    "install",
    "uninstall",
]

#: The mechanism taxonomy (DESIGN.md §9). ``pipe_wait`` and
#: ``dram_access`` are derived kinds produced by the attribution layer.
MECHANISM_KINDS = (
    "txn",
    "mtr",
    "page_fix",
    "lock_wait",
    "cxl_access",
    "cache_flush",
    "rpc",
    "wal_append",
    "pagestore_io",
    "recovery_phase",
    "pipe_wait",
    "dram_access",
)

_OPEN = "open"
_CLOSED = "closed"
_ABANDONED = "abandoned"


class Span:
    """One causal interval: (kind, name, parent, duration, costs)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "kind",
        "name",
        "t0",
        "t1",
        "ns",
        "status",
        "fields",
        "costs",
        "end_seq",
        "_meter",
        "_c0",
        "_c_idx",
    )

    def __init__(
        self, span_id: int, parent_id: Optional[int], kind: str, name: str, t0: float
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.t0 = t0
        self.t1 = t0
        self.ns = 0.0
        self.status = _OPEN
        self.fields: dict = {}
        self.costs: Optional[dict] = None
        self.end_seq = 0
        self._meter: Any = None
        self._c0 = 0.0
        self._c_idx = 0

    @property
    def wall_ns(self) -> float:
        """Simulated wall-clock width (0 for charged-only spans)."""
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.span_id} {self.kind}:{self.name} parent="
            f"{self.parent_id} ns={self.ns} {self.status})"
        )


class _Attached:
    """Scoped push/pop of a cross-yield span around a synchronous segment."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer.push(self._span)
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._tracer.pop(self._span)


class _NullCtx:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


_NULL_CTX = _NullCtx()


def attached(
    tracer: Optional["SpanTracer"], span: Optional[Span]
) -> Union["_Attached", "_NullCtx"]:
    """Context manager attaching ``span`` to the stack, or a no-op.

    The no-op path (tracer or span is ``None``) returns a shared null
    context so disabled call sites allocate nothing.
    """
    if tracer is None or span is None:
        return _NULL_CTX
    return _Attached(tracer, span)


class SpanTracer:
    """Begin/end spans with causal parents, installable globally.

    >>> with SpanTracer() as tracer:
    ...     span = tracer.begin("page_fix", "get", page=7)
    ...     tracer.add_ns("cxl_access", 250.0)
    ...     span = tracer.end(span)
    >>> span.costs
    {'cxl_access': 250.0}
    >>> active() is None
    True
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock = clock
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._end_seq = 0
        #: Spans ever marked abandoned (crash semantics + exception pops).
        self.abandoned_total = 0
        #: ``add_ns`` charges that arrived with nothing attached — the
        #: metrics pipeline surfaces this so the drops are never silent.
        self.dropped_costs = 0

    # -- recording (only reached when the tracer is installed) --------------------

    def _now(self) -> float:
        clock = self.clock
        return float(clock()) if clock is not None else 0.0

    def begin(
        self,
        kind: str,
        name: str,
        meter: Any = None,
        parent: Optional[Span] = None,
        push: bool = True,
        **fields: object,
    ) -> Span:
        """Open a span. Parent defaults to the top of the attach stack.

        ``meter`` snapshots an :class:`~repro.hardware.memory.AccessMeter`
        so a span closing inside the same synchronous segment gets a
        charged-ns duration. ``push=False`` keeps the span off the attach
        stack — required for spans that live across ``yield``s.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        self._next_id += 1
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            kind,
            name,
            self._now(),
        )
        if fields:
            span.fields.update(fields)
        if meter is not None:
            span._meter = meter
            span._c0 = meter.ns + meter.taken_ns
            span._c_idx = len(meter.transfers)
        self._spans.append(span)
        if push:
            self._stack.append(span)
        return span

    def end(self, span: Span, **fields: object) -> Span:
        """Close a span; wall duration if any time passed, else charged."""
        if span.status != _OPEN:
            return span
        if fields:
            span.fields.update(fields)
        span.t1 = self._now()
        wall = span.t1 - span.t0
        meter = span._meter
        if wall <= 0.0 and meter is not None:
            charged = (meter.ns + meter.taken_ns) - span._c0
            transfers = meter.transfers
            if span._c_idx < len(transfers):
                for charge in transfers[span._c_idx :]:
                    charged += charge.base_ns
            span.ns = charged if charged > 0.0 else 0.0
        else:
            span.ns = float(wall)
        span._meter = None
        span.status = _CLOSED
        self._end_seq += 1
        span.end_seq = self._end_seq
        stack = self._stack
        if span in stack:
            # Pop through the span; anything opened above it that was
            # never ended (exception path) is abandoned, keeping the
            # stack consistent for the next synchronous segment.
            while stack:
                top = stack.pop()
                if top is span:
                    break
                self._abandon(top)
        return span

    def record(
        self,
        kind: str,
        name: str,
        parent: Optional[Span] = None,
        ns: float = 0.0,
        t0: Optional[float] = None,
        **fields: object,
    ) -> Span:
        """Record a retroactive, already-finished span (pure waits).

        Used where the duration is only known after the fact — lock
        waits and pipe queueing — so nothing is ever left open across
        the ``yield``. Pass either ``ns`` (ending now) or an explicit
        ``t0``.
        """
        now = self._now()
        if t0 is None:
            t0 = now - ns
        else:
            ns = now - t0
        if parent is None and self._stack:
            parent = self._stack[-1]
        self._next_id += 1
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            kind,
            name,
            t0,
        )
        span.t1 = now
        span.ns = float(ns) if ns > 0.0 else 0.0
        span.status = _CLOSED
        self._end_seq += 1
        span.end_seq = self._end_seq
        if fields:
            span.fields.update(fields)
        self._spans.append(span)
        return span

    def add_ns(self, kind: str, ns: float) -> None:
        """Charge ``ns`` to the current span's ``costs[kind]`` bucket.

        The cheap alternative to a span per memory access: the
        critical-path decomposition carves these out of the enclosing
        span's self-time. Dropped (but counted in
        :attr:`dropped_costs`) when nothing is attached.
        """
        stack = self._stack
        if not stack:
            self.dropped_costs += 1
            return
        span = stack[-1]
        costs = span.costs
        if costs is None:
            costs = span.costs = {}
        costs[kind] = costs.get(kind, 0.0) + ns

    # -- attach stack -------------------------------------------------------------

    def push(self, span: Span) -> None:
        self._stack.append(span)

    def pop(self, span: Span) -> None:
        """Pop ``span``; anything left open above it is abandoned."""
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                return
            self._abandon(top)

    def current(self) -> Optional[Span]:
        """Top of the attach stack (parent for the next pushed span)."""
        return self._stack[-1] if self._stack else None

    # -- crash handling -----------------------------------------------------------

    def _abandon(self, span: Span) -> None:
        if span.status != _OPEN:
            return
        span.t1 = self._now()
        span.ns = float(span.t1 - span.t0)
        span._meter = None
        span.status = _ABANDONED
        self._end_seq += 1
        span.end_seq = self._end_seq
        self.abandoned_total += 1

    def abandon_open(self) -> int:
        """Mark every still-open span abandoned (crash semantics).

        Called where an :class:`~repro.faults.injector.InjectedCrash`
        is caught: the spans above the crash point can never end, so
        they must not leak as ``open`` (the span-balance invariant) nor
        mis-parent spans from the next incarnation. Returns how many
        spans were abandoned.
        """
        self._stack.clear()
        abandoned = 0
        for span in self._spans:
            if span.status == _OPEN:
                self._abandon(span)
                abandoned += 1
        return abandoned

    # -- inspection ---------------------------------------------------------------

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Stamp future spans with this clock (e.g. ``lambda: sim.now``)."""
        self.clock = clock

    def spans(self) -> list[Span]:
        """All recorded spans in begin order."""
        return list(self._spans)

    @property
    def open_count(self) -> int:
        return sum(1 for span in self._spans if span.status == _OPEN)

    def clear(self) -> None:
        """Drop recorded spans (the attach stack must be empty)."""
        if self._stack:
            raise RuntimeError("clear() with spans still attached")
        self._spans = []

    # -- installation -------------------------------------------------------------

    def __enter__(self) -> "SpanTracer":
        install(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        uninstall(self)


_ACTIVE: Optional[SpanTracer] = None


def active() -> Optional[SpanTracer]:
    """The installed span tracer, or None (the common, fast case)."""
    return _ACTIVE


def install(tracer: SpanTracer) -> SpanTracer:
    """Install the span tracer; instrumented call sites start recording."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not tracer:
        raise RuntimeError("another SpanTracer is already installed")
    _ACTIVE = tracer
    return tracer


def uninstall(tracer: Optional[SpanTracer] = None) -> None:
    """Remove the installed span tracer (idempotent).

    Passing the tracer asserts you are removing the one you installed.
    """
    global _ACTIVE
    if tracer is not None and _ACTIVE is not None and _ACTIVE is not tracer:
        raise RuntimeError("a different SpanTracer is installed")
    _ACTIVE = None

"""Named counters and histograms for mechanism-level measurement.

A :class:`CounterRegistry` is a flat namespace of monotonically
accumulated counters (``add``) plus fixed-shape histograms
(``observe``). Names are dotted, ``subsystem.metric`` style —
``sharing.lines_flushed``, ``pool.rdma.remote_read_bytes`` — so a
snapshot sorts into readable groups.

Counters are plain floats and deterministic for a seeded run; histogram
*values* may be wall-clock durations (e.g. PolarRecv phase timings), so
regression tests should pin counters, not histogram contents.
"""

from __future__ import annotations

__all__ = ["CounterRegistry", "Histogram"]


class Histogram:
    """Running summary of observed values: count/sum/min/max + buckets.

    Buckets are powers of two of the observed unit; enough to answer
    "are these flushes tens or thousands of nanoseconds" without storing
    samples.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    _N_BUCKETS = 64

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = max(0, int(value).bit_length()) if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class CounterRegistry:
    """A flat registry of named counters and histograms.

    >>> registry = CounterRegistry()
    >>> registry.add("pool.hits")
    >>> registry.add("pool.hits", 2)
    >>> registry.snapshot()
    {'pool.hits': 3.0}
    >>> registry.observe("flush.ns", 1200.0)
    >>> registry.histogram("flush.ns").count
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters ---------------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    # -- histograms -------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self._histograms[name] = histogram
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (empty if never observed)."""
        return self._histograms.get(name, Histogram())

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """All counters, sorted by name (histograms excluded)."""
        return dict(sorted(self._counters.items()))

    def histogram_snapshot(self) -> dict[str, dict[str, float]]:
        return {
            name: hist.summary()
            for name, hist in sorted(self._histograms.items())
        }

    def reset(self) -> None:
        self._counters = {}
        self._histograms = {}

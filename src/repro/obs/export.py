"""Span export: Chrome-trace JSON (loadable in Perfetto) + CSV summary.

The Chrome trace event format is the least-common-denominator input
Perfetto, ``chrome://tracing`` and ``speedscope`` all accept: a JSON
object with a ``traceEvents`` list of complete ("ph": "X") events whose
``ts``/``dur`` are in microseconds. We map:

* ``cat``   ← the span's mechanism kind,
* ``tid``   ← the span's root ancestor id, so every transaction renders
  as its own track with children nested by time containment,
* ``args``  ← the span's fields plus span/parent ids and status.

Charged-only spans (no simulated wall width — they execute inside one
synchronous segment and their latency materialises at the next settle)
are exported with ``dur`` equal to their charged ns, starting at their
record timestamp; the ``charged`` arg marks them.

Output is deterministic: spans are serialised in begin order with
sorted keys and fixed separators, so a seeded workload exports
byte-identical JSON (the golden-snapshot test pins one).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Union

from .critical_path import MechanismBreakdown
from .spans import Span, SpanTracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_csv_summary",
]


def _spans_of(source: Union[SpanTracer, Iterable[Span]]) -> list[Span]:
    return source.spans() if isinstance(source, SpanTracer) else list(source)


def _root_index(spans: list[Span]) -> dict[int, int]:
    """span_id → root ancestor span_id (parents precede children)."""
    roots: dict[int, int] = {}
    for span in spans:
        parent = span.parent_id
        roots[span.span_id] = (
            roots.get(parent, parent) if parent is not None else span.span_id
        )
    return roots


def to_chrome_trace(
    source: Union[SpanTracer, Iterable[Span]], process_name: str = "repro"
) -> dict:
    """Build the Chrome-trace dict for ``json.dump``."""
    spans = _spans_of(source)
    roots = _root_index(spans)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        wall = span.t1 - span.t0
        charged = wall <= 0.0 and span.ns > 0.0
        args = dict(span.fields)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "closed":
            args["status"] = span.status
        if charged:
            args["charged"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t0 / 1e3,
                "dur": (span.ns if charged else wall) / 1e3,
                "pid": 0,
                "tid": roots.get(span.span_id, span.span_id),
                "args": args,
            }
        )
    return {"displayTimeUnit": "ns", "traceEvents": events}


def write_chrome_trace(
    path: Union[str, "os.PathLike[str]"],
    source: Union[SpanTracer, Iterable[Span]],
    process_name: str = "repro",
) -> None:
    """Serialise deterministically (sorted keys, fixed separators)."""
    payload = to_chrome_trace(source, process_name=process_name)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")


def write_csv_summary(
    path: Union[str, "os.PathLike[str]"], breakdown: MechanismBreakdown
) -> None:
    """Per-mechanism bucket totals and per-txn percentiles as CSV."""
    lines = ["mechanism,total_ns,share,p50_ns,p95_ns,p99_ns"]
    for kind in breakdown.kinds():
        recorder = breakdown.per_txn.get(kind)
        p50 = recorder.percentile_ns(50.0) if recorder is not None else 0.0
        p95 = recorder.p95_ns if recorder is not None else 0.0
        p99 = recorder.p99_ns if recorder is not None else 0.0
        lines.append(
            f"{kind},{breakdown.buckets[kind]:.1f},"
            f"{breakdown.fraction(kind):.4f},{p50:.1f},{p95:.1f},{p99:.1f}"
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
        handle.write("\n")

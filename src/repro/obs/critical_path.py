"""Critical-path decomposition of span trees into mechanism buckets.

Given a :class:`~repro.obs.spans.SpanTracer` full of closed spans, this
module answers the paper's §4.4 question quantitatively: of each
transaction's commit latency, how many nanoseconds went to lock waits,
cache-line flushes, RPCs, WAL appends, CXL accesses, ...?

Attribution semantics (DESIGN.md §9):

* a span's **self-time** is its duration minus the summed durations of
  its direct children — time the mechanism itself was responsible for;
* fine-grained ``costs`` recorded via
  :meth:`~repro.obs.spans.SpanTracer.add_ns` (memory line fills,
  coherency flag reads) are carved out of the self-time of the span
  they were charged under and credited to their own bucket;
* the *root* span's self-time is reported as ``unattributed`` — it is
  exactly the latency the instrumentation failed to explain, so
  coverage is honest by construction.

Because child durations telescope, the bucket totals for one
transaction sum to its measured wall latency (up to the integer
truncation the simulator applies when turning charges into timeouts;
negative self-times from that truncation are clamped to zero).
"""

from __future__ import annotations

from typing import Iterable, Union

from ..sim.stats import LatencyRecorder
from .spans import Span, SpanTracer

__all__ = [
    "MechanismBreakdown",
    "UNATTRIBUTED",
    "decompose",
    "summarize",
]

UNATTRIBUTED = "unattributed"


class MechanismBreakdown:
    """Aggregated per-mechanism latency buckets over a set of root spans.

    ``buckets`` maps mechanism kind → total ns across all roots;
    ``per_txn`` maps kind → a :class:`LatencyRecorder` of per-root ns
    (for p50/p95/p99); ``latency`` records per-root total ns.
    """

    def __init__(self) -> None:
        self.txns = 0
        self.total_ns = 0.0
        self.buckets: dict[str, float] = {}
        self.per_txn: dict[str, LatencyRecorder] = {}
        self.latency = LatencyRecorder()

    def _absorb(self, root_ns: float, txn_buckets: dict[str, float]) -> None:
        self.txns += 1
        self.total_ns += root_ns
        self.latency.add(root_ns)
        for kind, ns in txn_buckets.items():
            self.buckets[kind] = self.buckets.get(kind, 0.0) + ns
            recorder = self.per_txn.get(kind)
            if recorder is None:
                recorder = self.per_txn[kind] = LatencyRecorder()
            recorder.add(ns)

    def merge(self, other: "MechanismBreakdown") -> "MechanismBreakdown":
        """Fold another breakdown in (e.g. runs at different share pcts)."""
        self.txns += other.txns
        self.total_ns += other.total_ns
        self.latency.merge(other.latency)
        for kind, ns in other.buckets.items():
            self.buckets[kind] = self.buckets.get(kind, 0.0) + ns
        for kind, recorder in other.per_txn.items():
            mine = self.per_txn.get(kind)
            if mine is None:
                mine = self.per_txn[kind] = LatencyRecorder()
            mine.merge(recorder)
        return self

    @property
    def attributed_ns(self) -> float:
        return sum(
            ns for kind, ns in self.buckets.items() if kind != UNATTRIBUTED
        )

    @property
    def coverage(self) -> float:
        """Fraction of root latency explained by mechanism buckets."""
        if self.total_ns <= 0.0:
            return 1.0
        return min(1.0, self.attributed_ns / self.total_ns)

    def fraction(self, kind: str) -> float:
        if self.total_ns <= 0.0:
            return 0.0
        return self.buckets.get(kind, 0.0) / self.total_ns

    def kinds(self) -> list[str]:
        """Bucket kinds, largest total first (unattributed last)."""
        ranked = sorted(
            (kind for kind in self.buckets if kind != UNATTRIBUTED),
            key=lambda kind: -self.buckets[kind],
        )
        if UNATTRIBUTED in self.buckets:
            ranked.append(UNATTRIBUTED)
        return ranked


def _children_index(spans: list[Span]) -> dict[int, list[Span]]:
    children: dict[int, list[Span]] = {}
    for span in spans:
        parent = span.parent_id
        if parent is not None:
            children.setdefault(parent, []).append(span)
    return children


def decompose(
    root: Span, children: dict[int, list[Span]]
) -> dict[str, float]:
    """One root span's subtree → mechanism-kind buckets (ns).

    The root's own self-time becomes ``unattributed``; every descendant
    contributes its self-time to its kind and its ``costs`` to theirs.
    """
    buckets: dict[str, float] = {}
    pending = [root]
    while pending:
        span = pending.pop()
        kids = children.get(span.span_id)
        child_ns = 0.0
        if kids:
            pending.extend(kids)
            for kid in kids:
                child_ns += kid.ns
        self_ns = span.ns - child_ns
        if span.costs:
            for kind, ns in span.costs.items():
                buckets[kind] = buckets.get(kind, 0.0) + ns
                self_ns -= ns
        if self_ns < 0.0:
            self_ns = 0.0
        key = UNATTRIBUTED if span is root else span.kind
        buckets[key] = buckets.get(key, 0.0) + self_ns
    return buckets


def summarize(
    source: Union[SpanTracer, Iterable[Span]], root_kind: str = "txn"
) -> MechanismBreakdown:
    """Decompose every closed root span and aggregate the buckets.

    Roots are parentless closed spans of ``root_kind``. Abandoned
    subtrees (crashes) are excluded — a transaction that never
    committed has no commit latency to attribute.
    """
    spans = source.spans() if isinstance(source, SpanTracer) else list(source)
    children = _children_index(spans)
    breakdown = MechanismBreakdown()
    for span in spans:
        if (
            span.parent_id is None
            and span.kind == root_kind
            and span.status == "closed"
        ):
            breakdown._absorb(span.ns, decompose(span, children))
    return breakdown

"""CLI: run fleet HA scenarios under the live telemetry pipeline.

::

    python -m repro.obs rolling-crash degraded-mode
    python -m repro.obs --json all
    python -m repro.obs --interval-ns 50000 failover-storm
    python -m repro.obs --quick join-leave   # skip recovery baselines

Each scenario runs with a fresh :class:`~repro.obs.metrics.MetricsPipeline`
installed at the chosen sim-time scrape interval, so one invocation
prints the full observability story: the per-series sparkline
dashboard, the SLO monitor's burn-rate alerts (checked against the
availability timeline by the scenario oracle), and the derived
per-entity health timelines. ``--json`` emits one canonical JSON
document per scenario instead — metric timelines, SLO state, and
health intervals under sorted keys, byte-stable for a fixed seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..bench.report import format_metrics_dashboard
from ..ha.scenarios import SCENARIOS
from .metrics import MetricsPipeline
from .slo import HealthTimeline


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fleet HA scenarios under live telemetry: sim-time "
        "metric scrapes, SLO burn-rate alerting, and per-shard health "
        "timelines.",
    )
    parser.add_argument(
        "scenarios",
        nargs="+",
        choices=sorted(SCENARIOS) + ["all"],
        help="scenario names, or 'all'",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument(
        "--interval-ns",
        type=float,
        default=100_000.0,
        help="sim-time scrape interval in ns (default 100000 = 100 us)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the ARIES/RDMA recovery baselines in join-leave",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print metrics + SLO + health as canonical JSON",
    )
    args = parser.parse_args(argv)

    names = sorted(SCENARIOS) if "all" in args.scenarios else args.scenarios
    failed = 0
    for name in names:
        kwargs: dict = {}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if name == "join-leave" and args.quick:
            kwargs["with_baselines"] = False
        pipeline = MetricsPipeline(scrape_interval_ns=args.interval_ns)
        try:
            with pipeline:
                result = SCENARIOS[name](**kwargs)
            pipeline.check_consistent()
        except Exception as exc:  # surfaced per-scenario, keep going
            print(f"{name}: FAILED — {exc}", file=sys.stderr)
            failed += 1
            continue
        health = HealthTimeline.derive(pipeline)
        if args.json:
            payload = {
                "scenario": name,
                "seed": result.seed,
                "metrics": json.loads(pipeline.to_json()),
                "slo": result.slo,
                "health": health.to_dict(),
            }
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(f"{name} (seed {result.seed}):")
            for line in result.summary_lines():
                print(line)
            print(format_metrics_dashboard(pipeline, title=f"{name} metrics"))
            for line in health.summary_lines():
                print(line)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

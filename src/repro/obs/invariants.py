"""Trace-driven coherency-protocol invariant checking.

The checker replays a trace (any iterable of :class:`TraceEvent` in
emission order) and asserts the safety properties the sharing protocol
of §3.3 promises. It never looks at live objects — only at the event
stream — so it works equally as a pytest fixture over a finished test,
over a sweep-harness golden run, or over a benchmark trace.

Checked invariants
==================

``no_stale_read``
    After the fusion server pushes an ``invalid`` flag to a node for a
    page (``fusion.invalidate_push``), that node's next access to the
    page (``sharing.page_access``) must observe the flag and invalidate
    its CPU cache (``saw_invalid=True``) — otherwise it read through
    potentially stale cached lines. Tracking for a (node, page) pair
    resets when the node drops its metadata entry (``sharing.drop``):
    a re-registration invalidates the cache and fetches fresh bytes.

``flush_on_write_release``
    Every distributed write-lock release (``lock.write_release``) must
    be preceded — since the matching ``lock.write_acquire`` — by a
    flush of that page (``sharing.flush`` for the CXL pool,
    ``rdma.flush_page`` for the RDMA baseline). A CXL flush must write
    back *exactly* the dirty lines: ``lines_flushed == dirty_before``
    and ``dirty_after == 0`` (clflush leaves nothing cached).

``lsn_monotone``
    Within one redo log, appended LSNs (``wal.append``) are strictly
    increasing — globally and therefore per page.

Event schema expected (unknown events are ignored, so traces may carry
arbitrary additional subsystems):

=========================  ==================================================
event key                  fields used
=========================  ==================================================
``fusion.invalidate_push`` ``page``, ``target`` (and ``writer``, unused)
``sharing.page_access``    ``node``, ``page``, ``saw_invalid``
``sharing.drop``           ``node``, ``page``
``sharing.flush``          ``node``, ``page``, ``dirty_before``,
                           ``lines_flushed``, ``dirty_after``
``rdma.flush_page``        ``node``, ``page``
``lock.write_acquire``     ``node``, ``page``
``lock.write_release``     ``node``, ``page``
``wal.append``             ``log``, ``page``, ``lsn``
=========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from .spans import Span, SpanTracer
from .trace import TraceEvent, Tracer

__all__ = [
    "Violation",
    "InvariantViolationError",
    "TraceInvariantChecker",
    "check_events",
    "assert_trace_invariants",
    "SpanCheckStats",
    "check_span_invariants",
    "assert_span_invariants",
]

# Subsystems the checker's correctness depends on: a dropped event here
# could hide a violation, so assert_trace_invariants refuses such traces.
PROTOCOL_SUBSYSTEMS = ("fusion", "sharing", "lock", "wal", "rdma")


@dataclass(frozen=True)
class Violation:
    """One invariant broken at one point of the trace."""

    invariant: str
    seq: int
    detail: str


class InvariantViolationError(AssertionError):
    """The trace breaks one or more protocol invariants."""

    def __init__(self, violations: list[Violation]) -> None:
        lines = "\n".join(
            f"  [{v.invariant}] @#{v.seq}: {v.detail}" for v in violations
        )
        super().__init__(
            f"{len(violations)} trace invariant violation(s):\n{lines}"
        )
        self.violations = violations


@dataclass
class CheckStats:
    """How much the checker actually verified (guards trivial passes)."""

    events: int = 0
    accesses_checked: int = 0
    invalidations_tracked: int = 0
    releases_checked: int = 0
    flushes_checked: int = 0
    appends_checked: int = 0
    violations: list[Violation] = field(default_factory=list)


class TraceInvariantChecker:
    """Single-pass replay of an event stream against the §3.3 invariants."""

    def __init__(self) -> None:
        self.stats = CheckStats()
        # (node, page) -> seq of the oldest unacknowledged invalid push
        self._pending_invalid: dict[tuple, int] = {}
        # (node, page) -> flush seen since the open write_acquire?
        self._open_write_locks: dict[tuple, bool] = {}
        # log id -> last appended LSN
        self._last_lsn: dict[object, int] = {}

    def check(self, events: Iterable[TraceEvent]) -> list[Violation]:
        for event in events:
            self.stats.events += 1
            handler = _HANDLERS.get(event.key)
            if handler is not None:
                handler(self, event)
        return self.stats.violations

    # -- handlers -------------------------------------------------------------------

    def _violate(self, invariant: str, event: TraceEvent, detail: str) -> None:
        self.stats.violations.append(Violation(invariant, event.seq, detail))

    def _on_invalidate_push(self, event: TraceEvent) -> None:
        key = (event.fields["target"], event.fields["page"])
        self._pending_invalid.setdefault(key, event.seq)
        self.stats.invalidations_tracked += 1

    def _on_page_access(self, event: TraceEvent) -> None:
        fields = event.fields
        key = (fields["node"], fields["page"])
        pushed_at = self._pending_invalid.pop(key, None)
        self.stats.accesses_checked += 1
        if pushed_at is not None and not fields.get("saw_invalid"):
            self._violate(
                "no_stale_read",
                event,
                f"node {key[0]!r} accessed page {key[1]} without observing "
                f"the invalid flag pushed at #{pushed_at} — stale CPU-cache "
                "lines may have served the read",
            )

    def _on_drop(self, event: TraceEvent) -> None:
        key = (event.fields["node"], event.fields["page"])
        self._pending_invalid.pop(key, None)
        self._open_write_locks.pop(key, None)

    def _on_write_acquire(self, event: TraceEvent) -> None:
        key = (event.fields["node"], event.fields["page"])
        self._open_write_locks[key] = False

    def _on_flush(self, event: TraceEvent) -> None:
        fields = event.fields
        key = (fields["node"], fields["page"])
        self.stats.flushes_checked += 1
        if key in self._open_write_locks:
            self._open_write_locks[key] = True
        dirty_before = fields["dirty_before"]
        lines_flushed = fields["lines_flushed"]
        dirty_after = fields["dirty_after"]
        if lines_flushed != dirty_before:
            self._violate(
                "flush_on_write_release",
                event,
                f"node {key[0]!r} page {key[1]}: flushed {lines_flushed} "
                f"lines but {dirty_before} were dirty — the release must "
                "write back exactly the modified 64 B lines",
            )
        if dirty_after != 0:
            self._violate(
                "flush_on_write_release",
                event,
                f"node {key[0]!r} page {key[1]}: {dirty_after} dirty lines "
                "survived the release flush",
            )

    def _on_rdma_flush(self, event: TraceEvent) -> None:
        key = (event.fields["node"], event.fields["page"])
        self.stats.flushes_checked += 1
        if key in self._open_write_locks:
            self._open_write_locks[key] = True

    def _on_write_release(self, event: TraceEvent) -> None:
        key = (event.fields["node"], event.fields["page"])
        self.stats.releases_checked += 1
        flushed = self._open_write_locks.pop(key, None)
        if flushed is None:
            self._violate(
                "flush_on_write_release",
                event,
                f"node {key[0]!r} released a write lock on page {key[1]} "
                "it never acquired in this trace",
            )
        elif not flushed:
            self._violate(
                "flush_on_write_release",
                event,
                f"node {key[0]!r} released the write lock on page {key[1]} "
                "without flushing its modifications",
            )

    def _on_wal_append(self, event: TraceEvent) -> None:
        fields = event.fields
        log, lsn = fields["log"], fields["lsn"]
        self.stats.appends_checked += 1
        last = self._last_lsn.get(log)
        if last is not None and lsn <= last:
            self._violate(
                "lsn_monotone",
                event,
                f"log {log!r}: LSN {lsn} appended after {last} "
                f"(page {fields['page']})",
            )
        if last is None or lsn > last:
            self._last_lsn[log] = lsn


_HANDLERS = {
    "fusion.invalidate_push": TraceInvariantChecker._on_invalidate_push,
    "sharing.page_access": TraceInvariantChecker._on_page_access,
    "sharing.drop": TraceInvariantChecker._on_drop,
    "sharing.flush": TraceInvariantChecker._on_flush,
    "rdma.flush_page": TraceInvariantChecker._on_rdma_flush,
    "lock.write_acquire": TraceInvariantChecker._on_write_acquire,
    "lock.write_release": TraceInvariantChecker._on_write_release,
    "wal.append": TraceInvariantChecker._on_wal_append,
}


def check_events(events: Iterable[TraceEvent]) -> list[Violation]:
    """Replay ``events``; returns the violations found (possibly empty)."""
    return TraceInvariantChecker().check(events)


def assert_trace_invariants(
    source: Union[Tracer, Iterable[TraceEvent]],
) -> CheckStats:
    """Check a tracer (or raw event list); raise on any violation.

    When given a :class:`Tracer`, also refuses traces whose protocol
    subsystems overflowed their rings — lost events could hide
    violations, so such a run must be re-traced with a larger capacity.
    Returns the checker's :class:`CheckStats` so callers can assert the
    trace was non-trivial (e.g. ``stats.releases_checked > 0``).
    """
    if isinstance(source, Tracer):
        lost = {
            subsystem: count
            for subsystem, count in source.dropped.items()
            if subsystem in PROTOCOL_SUBSYSTEMS and count
        }
        if lost:
            raise InvariantViolationError(
                [
                    Violation(
                        "trace_complete",
                        0,
                        f"protocol events dropped from full rings: {lost}; "
                        "raise Tracer(capacity_per_subsystem=...)",
                    )
                ]
            )
        events = source.events()
    else:
        events = list(source)
    checker = TraceInvariantChecker()
    violations = checker.check(events)
    if violations:
        raise InvariantViolationError(violations)
    return checker.stats


# ---------------------------------------------------------------------------
# Span-balance invariants (repro.obs.spans)
# ---------------------------------------------------------------------------


@dataclass
class SpanCheckStats:
    """What the span checker verified (guards trivial passes)."""

    spans: int = 0
    closed: int = 0
    abandoned: int = 0
    violations: list[Violation] = field(default_factory=list)


def check_span_invariants(
    source: Union["SpanTracer", Iterable["Span"]],
    allow_abandoned: bool = False,
) -> SpanCheckStats:
    """Verify span well-formedness; violations collected, not raised.

    The span-balance invariant: every recorded span was *ended* — closed
    by matching :meth:`~repro.obs.spans.SpanTracer.end`, or explicitly
    marked ``abandoned`` by crash handling
    (:meth:`~repro.obs.spans.SpanTracer.abandon_open`). Additionally:

    * a span's parent exists and was begun before it,
    * nesting is well-formed: no closed span outlives its closed parent
      (children end before the parent, in end order and in simulated
      time).

    ``allow_abandoned`` is for fault-injected runs, where the spans that
    were open at the crash legitimately never end.
    """
    spans = source.spans() if isinstance(source, SpanTracer) else list(source)
    stats = SpanCheckStats()
    by_id: dict[int, "Span"] = {}
    for span in spans:
        stats.spans += 1
        sid = span.span_id
        by_id[sid] = span
        if span.status == "closed":
            stats.closed += 1
        elif span.status == "abandoned":
            stats.abandoned += 1
            if not allow_abandoned:
                stats.violations.append(
                    Violation(
                        "span_balance",
                        sid,
                        f"{span.kind}:{span.name} abandoned in a crash-free "
                        "run (missing end())",
                    )
                )
        else:
            stats.violations.append(
                Violation(
                    "span_balance",
                    sid,
                    f"{span.kind}:{span.name} still open — a begin() "
                    "without a matching end() or abandon_open()",
                )
            )
        parent_id = span.parent_id
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            stats.violations.append(
                Violation(
                    "span_parent",
                    sid,
                    f"{span.kind}:{span.name} references parent "
                    f"#{parent_id}, which was never begun (or begun later)",
                )
            )
            continue
        if span.status == "closed" and parent.status == "closed":
            if span.end_seq > parent.end_seq or span.t1 > parent.t1:
                stats.violations.append(
                    Violation(
                        "span_nesting",
                        sid,
                        f"{span.kind}:{span.name} outlives its parent "
                        f"#{parent_id} ({parent.kind}:{parent.name})",
                    )
                )
    return stats


def assert_span_invariants(
    source: Union["SpanTracer", Iterable["Span"]],
    allow_abandoned: bool = False,
) -> SpanCheckStats:
    """Check span balance/nesting; raise on any violation.

    Returns :class:`SpanCheckStats` so callers can assert the check was
    non-trivial (e.g. ``stats.closed > 0``).
    """
    stats = check_span_invariants(source, allow_abandoned=allow_abandoned)
    if stats.violations:
        raise InvariantViolationError(stats.violations)
    return stats

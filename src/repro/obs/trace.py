"""The tracer: structured events in bounded per-subsystem ring buffers.

Installation mirrors :mod:`repro.faults.injector`: a single module
global holds the active tracer, and every instrumented call site does

.. code-block:: python

    tracer = obs_active()
    if tracer is not None:
        tracer.emit("sharing", "flush", node=..., page=..., lines=...)

so the *disabled* cost is one global load plus a ``None`` check — no
kwargs dict is ever built, no string is formatted. Hot paths that only
count (no event payload) use ``tracer.count(...)`` the same way.

Events carry a global sequence number (total order across subsystems —
what the invariant checker replays), the simulation time if a clock was
attached, the subsystem, a name, and a payload dict. Each subsystem gets
its own ring (``collections.deque`` with ``maxlen``), so a chatty
subsystem (memory accesses) cannot evict the protocol events the
invariant checker needs; overflow is counted per subsystem in
:attr:`Tracer.dropped` rather than silently discarded.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from .counters import CounterRegistry

__all__ = ["TraceEvent", "Tracer", "active", "install", "uninstall"]


class TraceEvent:
    """One structured event: (seq, t, subsystem, name, fields)."""

    __slots__ = ("seq", "t", "subsystem", "name", "fields")

    def __init__(
        self, seq: int, t: float, subsystem: str, name: str, fields: dict
    ) -> None:
        self.seq = seq
        self.t = t
        self.subsystem = subsystem
        self.name = name
        self.fields = fields

    @property
    def key(self) -> str:
        """``subsystem.name`` — how invariants refer to event kinds."""
        return f"{self.subsystem}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(#{self.seq} t={self.t} {self.subsystem}.{self.name} "
            f"{self.fields})"
        )


class Tracer:
    """Bounded event rings + a counter registry, installable globally.

    Used as a context manager, installation and removal are scoped —
    instrumented call sites see the tracer only inside the ``with``:

    >>> with Tracer() as tracer:
    ...     active() is tracer
    ...     tracer.emit("pool", "evict", page=7)
    ...     tracer.count("pool.evictions")
    True
    >>> active() is None
    True
    >>> [event.key for event in tracer.events()]
    ['pool.evict']
    >>> tracer.counters.snapshot()
    {'pool.evictions': 1.0}
    """

    def __init__(
        self,
        capacity_per_subsystem: int = 1 << 16,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity_per_subsystem <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity_per_subsystem = capacity_per_subsystem
        self.clock = clock
        self.counters = CounterRegistry()
        self._rings: dict[str, deque] = {}
        self._seq = 0
        self.dropped: dict[str, int] = {}

    # -- emission (only reached when the tracer is installed) --------------------

    def emit(self, subsystem: str, name: str, **fields: object) -> None:
        ring = self._rings.get(subsystem)
        if ring is None:
            ring = deque(maxlen=self.capacity_per_subsystem)
            self._rings[subsystem] = ring
        if len(ring) == self.capacity_per_subsystem:
            self.dropped[subsystem] = self.dropped.get(subsystem, 0) + 1
        self._seq += 1
        t = self.clock() if self.clock is not None else 0.0
        ring.append(TraceEvent(self._seq, t, subsystem, name, fields))

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters.add(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.counters.observe(name, value)

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Stamp future events with this clock (e.g. ``lambda: sim.now``)."""
        self.clock = clock

    # -- inspection ----------------------------------------------------------------

    def events(self, *subsystems: str) -> list[TraceEvent]:
        """Buffered events in global emission order.

        With arguments, only those subsystems; without, everything.
        """
        selected: Iterable[str] = subsystems or self._rings.keys()
        merged: list[TraceEvent] = []
        for subsystem in selected:
            merged.extend(self._rings.get(subsystem, ()))
        merged.sort(key=lambda event: event.seq)
        return merged

    def subsystems(self) -> list[str]:
        return sorted(self._rings)

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def clear_events(self) -> None:
        """Drop buffered events (counters persist)."""
        self._rings = {}
        self.dropped = {}

    # -- installation -----------------------------------------------------------------

    def __enter__(self) -> "Tracer":
        install(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        uninstall(self)


_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or None (the common, fast case)."""
    return _ACTIVE


def install(tracer: Tracer) -> Tracer:
    """Install the tracer; instrumented call sites start emitting."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not tracer:
        raise RuntimeError("another Tracer is already installed")
    _ACTIVE = tracer
    return tracer


def uninstall(tracer: Optional[Tracer] = None) -> None:
    """Remove the installed tracer (idempotent).

    Passing the tracer asserts you are removing the one you installed.
    """
    global _ACTIVE
    if tracer is not None and _ACTIVE is not None and _ACTIVE is not tracer:
        raise RuntimeError("a different Tracer is installed")
    _ACTIVE = None

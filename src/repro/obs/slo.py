"""SLO burn-rate alerting and health timelines over scraped metrics.

Consumes what :mod:`repro.obs.metrics` publishes — nothing else. Three
layers:

* :class:`SLObjective` / :class:`SLOMonitor` — multi-window burn-rate
  alerting in the SRE-workbook style: an error budget (``1 -
  objective``) is burned by bad ops; an alert fires when both a fast
  window (pages fast on hard outages) and a slow window (suppresses
  one-off blips) burn faster than their thresholds, and clears when the
  fast window calms down. Because burn is measured over *served* ops,
  an alert can clear mid-incident when traffic stops entirely and
  re-fire on the next failure — exactly how production burn alerts
  behave, and why scenarios assert alignment over the whole run rather
  than one contiguous alert per incident.
* :class:`HealthTimeline` — per-entity healthy/degraded/wedged
  intervals derived *post-hoc* from the scraped series: a node or
  shard is wedged while its ``ha.failover_inflight`` gauge is up,
  degraded while a circuit breaker is open, and the fleet aggregates
  the worst of everything plus the bad-op rate.
* :func:`check_alignment` — the scenario oracle: alerts must fire
  during injected degradation, stay silent in steady state, and clear
  after recovery. Phases are duck-typed (``kind`` / ``start_ns`` /
  ``end_ns``) so this module never imports :mod:`repro.ha` — the
  dependency points the other way.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Protocol

from .metrics import LabelItems, MetricsPipeline, ScrapeWindow, Series

__all__ = [
    "Alert",
    "BREAKER_GAUGE",
    "FAILOVER_GAUGE",
    "HEALTH_STATES",
    "HealthInterval",
    "HealthTimeline",
    "SLObjective",
    "SLOMonitor",
    "check_alignment",
]

#: Gauge a failover/crash handler holds at 1 while a shard has no primary.
FAILOVER_GAUGE = "ha.failover_inflight"
#: Gauge a circuit breaker publishes: 0 closed, 0.5 half-open, 1 open.
BREAKER_GAUGE = "ha.breaker_open"

#: Ordered worst-last so ``max`` by index picks the sickest state.
HEALTH_STATES = ("healthy", "degraded", "wedged")


class PhaseLike(Protocol):
    """What :func:`check_alignment` needs from an availability phase."""

    @property
    def kind(self) -> str: ...

    @property
    def start_ns(self) -> int: ...

    @property
    def end_ns(self) -> Optional[int]: ...


@dataclass(frozen=True)
class SLObjective:
    """An availability objective over a result-labeled op-count series.

    The defaults encode "99.9% of fleet ops succeed", judged over the
    ``fleet.ops`` series the HA scenarios publish: ``ok``/``drained``
    spend no budget, ``failed``/``shed`` burn it. Window sizes are in
    scrape intervals; burn thresholds follow the workbook shape (a
    fast-and-slow pair must both exceed their threshold to page).
    """

    name: str = "fleet-availability"
    objective: float = 0.999
    series: str = "fleet.ops"
    result_label: str = "result"
    good_results: tuple[str, ...] = ("ok", "drained")
    bad_results: tuple[str, ...] = ("failed", "shed")
    fast_windows: int = 3
    slow_windows: int = 30
    fast_burn: float = 14.0
    slow_burn: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError("need 1 <= fast_windows <= slow_windows")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass
class Alert:
    """One fired burn-rate alert; ``cleared_at_ns`` None while active."""

    objective: str
    fired_at_ns: float
    fast_burn: float
    slow_burn: float
    cleared_at_ns: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at_ns is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "objective": self.objective,
            "fired_at_ns": self.fired_at_ns,
            "cleared_at_ns": self.cleared_at_ns,
            "fast_burn": round(self.fast_burn, 3),
            "slow_burn": round(self.slow_burn, 3),
        }


class SLOMonitor:
    """Multi-window burn-rate alerting, fed one scrape window at a time.

    Attach to a pipeline (:meth:`attach`) or feed
    :meth:`record_window` directly:

    >>> monitor = SLOMonitor(SLObjective(fast_windows=1, slow_windows=2))
    >>> bad = ScrapeWindow(100.0, {("fleet.ops", (("result", "failed"),)): 5.0})
    >>> monitor.record_window(bad)
    >>> monitor.firing is not None, len(monitor.alerts)
    (True, 1)
    >>> monitor.record_window(ScrapeWindow(200.0, {}))
    >>> monitor.firing is None, monitor.alerts[0].cleared_at_ns
    (True, 200.0)
    """

    def __init__(self, objective: Optional[SLObjective] = None) -> None:
        self.objective = objective if objective is not None else SLObjective()
        self.alerts: list[Alert] = []
        self.ticks = 0
        self.good_total = 0.0
        self.bad_total = 0.0
        self._recent: deque[tuple[float, float]] = deque(
            maxlen=self.objective.slow_windows
        )
        self._firing: Optional[Alert] = None

    @property
    def firing(self) -> Optional[Alert]:
        return self._firing

    def attach(self, pipeline: MetricsPipeline) -> "SLOMonitor":
        pipeline.add_listener(self.record_window)
        return self

    def record_window(self, window: ScrapeWindow) -> None:
        obj = self.objective
        good = sum(
            window.total(obj.series, (obj.result_label, result))
            for result in obj.good_results
        )
        bad = sum(
            window.total(obj.series, (obj.result_label, result))
            for result in obj.bad_results
        )
        self.ticks += 1
        self.good_total += good
        self.bad_total += bad
        self._recent.append((good, bad))
        fast = self.burn_rate(obj.fast_windows)
        slow = self.burn_rate(obj.slow_windows)
        if self._firing is None:
            if fast >= obj.fast_burn and slow >= obj.slow_burn:
                self._firing = Alert(obj.name, window.t_ns, fast, slow)
                self.alerts.append(self._firing)
        else:
            self._firing.fast_burn = max(self._firing.fast_burn, fast)
            self._firing.slow_burn = max(self._firing.slow_burn, slow)
            if fast < obj.fast_burn:
                self._firing.cleared_at_ns = window.t_ns
                self._firing = None

    def burn_rate(self, windows: int) -> float:
        """Budget-burn multiple over the last ``windows`` scrapes.

        ``(bad / served) / error_budget`` — 1.0 means burning exactly at
        budget; an idle stretch (nothing served) burns nothing.
        """
        recent = list(self._recent)[-windows:]
        good = sum(g for g, _ in recent)
        bad = sum(b for _, b in recent)
        served = good + bad
        if served <= 0.0:
            return 0.0
        return (bad / served) / self.objective.error_budget

    def to_dict(self) -> dict[str, Any]:
        return {
            "objective": self.objective.name,
            "target": self.objective.objective,
            "ticks": self.ticks,
            "good_total": self.good_total,
            "bad_total": self.bad_total,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def summary_lines(self) -> list[str]:
        served = self.good_total + self.bad_total
        ratio = self.good_total / served if served else 1.0
        lines = [
            f"slo {self.objective.name}: {ratio * 100:.3f}% good "
            f"({self.good_total:.0f}/{served:.0f} ops over {self.ticks} windows), "
            f"{len(self.alerts)} alert(s)"
        ]
        for alert in self.alerts:
            cleared = (
                f"cleared {alert.cleared_at_ns / 1e6:.3f} ms"
                if alert.cleared_at_ns is not None
                else "STILL FIRING"
            )
            lines.append(
                f"  alert fired {alert.fired_at_ns / 1e6:.3f} ms "
                f"(burn fast {alert.fast_burn:.1f}x / slow {alert.slow_burn:.1f}x), "
                f"{cleared}"
            )
        return lines


def check_alignment(
    monitor: SLOMonitor,
    phases: Iterable[PhaseLike],
    scrape_interval_ns: float,
) -> list[str]:
    """Alert-vs-availability-timeline oracle; returns problems (empty = ok).

    Rules, in the order a reviewer would ask them:

    * injected degradation (any bad op) must produce at least one alert;
    * a clean run (zero bad ops) must stay silent;
    * no alert may fire at or before the first non-``up`` phase starts;
    * every alert must fire inside some non-``up`` phase, allowing the
      slow window's width of detection lag past the phase end;
    * every alert must have cleared by end of run (recovery observed).
    """
    problems: list[str] = []
    alerts = monitor.alerts
    if monitor.bad_total > 0 and not alerts:
        problems.append(
            f"{monitor.bad_total:.0f} bad op(s) burned budget but no alert fired"
        )
    if monitor.bad_total == 0 and alerts:
        problems.append(f"{len(alerts)} alert(s) fired on a clean run")
    non_up = [phase for phase in phases if phase.kind != "up"]
    grace_ns = monitor.objective.slow_windows * scrape_interval_ns
    first_start = min((phase.start_ns for phase in non_up), default=None)
    for alert in alerts:
        fired = alert.fired_at_ns
        if first_start is None:
            break  # the clean-run rule above already flagged these
        if fired <= first_start:
            problems.append(
                f"alert fired at {fired:.0f} ns, before the first "
                f"degradation began at {first_start} ns"
            )
            continue
        covered = any(
            phase.start_ns < fired
            and fired
            <= (phase.end_ns if phase.end_ns is not None else fired) + grace_ns
            for phase in non_up
        )
        if not covered:
            problems.append(
                f"alert fired at {fired:.0f} ns outside every degraded phase "
                f"(+{grace_ns:.0f} ns detection grace)"
            )
        if alert.cleared_at_ns is None:
            problems.append(
                f"alert fired at {fired:.0f} ns never cleared by end of run"
            )
    return problems


# -- health timelines ---------------------------------------------------------


@dataclass(frozen=True)
class HealthInterval:
    """One contiguous stretch of one entity's health state."""

    entity: str
    state: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict[str, Any]:
        return {
            "entity": self.entity,
            "state": self.state,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }


def _render_entity(labels: LabelItems) -> str:
    return ",".join(f"{key}={value}" for key, value in labels) or "fleet"


class _Stepper:
    """Step-function view of a series: value as of a timestamp."""

    __slots__ = ("_samples", "_index", "_value")

    def __init__(self, series: Series) -> None:
        self._samples = list(series.samples)
        self._index = 0
        self._value = 0.0

    def value_at(self, t_ns: float) -> float:
        while self._index < len(self._samples) and self._samples[self._index][0] <= t_ns:
            self._value = self._samples[self._index][1]
            self._index += 1
        return self._value


class HealthTimeline:
    """Per-entity healthy/degraded/wedged intervals from scraped series.

    Entities are the label sets seen on ``ha.failover_inflight``
    (wedged while > 0) and ``ha.breaker_open`` (degraded while > 0)
    gauges, plus the synthetic ``fleet`` entity, which is wedged while
    *any* failover is in flight, degraded while any breaker is open or
    the bad-op rate is nonzero, and healthy otherwise. Intervals change
    state only at scrape stamps, so the timeline is as exact as the
    scrape interval.
    """

    def __init__(self, intervals: list[HealthInterval]) -> None:
        self.intervals = intervals

    @classmethod
    def derive(
        cls, pipeline: MetricsPipeline, objective: Optional[SLObjective] = None
    ) -> "HealthTimeline":
        obj = objective if objective is not None else SLObjective()
        wedge: dict[LabelItems, Series] = {}
        breaker: dict[LabelItems, Series] = {}
        bad_rates: list[Series] = []
        horizon = pipeline.epoch_ns
        stamps: set[float] = set()
        for series in pipeline.all_series():
            last = series.last()
            if last is not None:
                horizon = max(horizon, last[0])
            relevant = True
            if series.name == FAILOVER_GAUGE:
                wedge[series.labels] = series
            elif series.name == BREAKER_GAUGE:
                breaker[series.labels] = series
            elif series.name == obj.series and any(
                (obj.result_label, result) in series.labels
                for result in obj.bad_results
            ):
                bad_rates.append(series)
            else:
                relevant = False
            if relevant:
                stamps.update(t for t, _ in series.samples)
        entities: list[tuple[str, Optional[LabelItems]]] = [("fleet", None)]
        for labels in sorted(set(wedge) | set(breaker)):
            entities.append((_render_entity(labels), labels))
        ticks = sorted(stamps)
        intervals: list[HealthInterval] = []
        for entity, labels in entities:
            if labels is None:
                wedge_steps = [_Stepper(s) for s in wedge.values()]
                breaker_steps = [_Stepper(s) for s in breaker.values()]
                rate_steps = [_Stepper(s) for s in bad_rates]
            else:
                wedge_steps = [_Stepper(wedge[labels])] if labels in wedge else []
                breaker_steps = [_Stepper(breaker[labels])] if labels in breaker else []
                rate_steps = []
            state = "healthy"
            start = pipeline.epoch_ns
            for tick in ticks:
                if any(step.value_at(tick) > 0.0 for step in wedge_steps):
                    now_state = "wedged"
                elif any(step.value_at(tick) > 0.0 for step in breaker_steps) or any(
                    step.value_at(tick) > 0.0 for step in rate_steps
                ):
                    now_state = "degraded"
                else:
                    now_state = "healthy"
                if now_state != state:
                    if tick > start:
                        intervals.append(HealthInterval(entity, state, start, tick))
                    state = now_state
                    start = tick
            end = max(horizon, start)
            if end > start or not ticks:
                intervals.append(HealthInterval(entity, state, start, end))
        return cls(intervals)

    def entities(self) -> list[str]:
        seen: dict[str, None] = {}
        for interval in self.intervals:
            seen.setdefault(interval.entity)
        return list(seen)

    def states(self, entity: str) -> list[HealthInterval]:
        return [i for i in self.intervals if i.entity == entity]

    def time_in(self, entity: str, state: str) -> float:
        return sum(
            i.duration_ns
            for i in self.intervals
            if i.entity == entity and i.state == state
        )

    def worst(self, entity: str) -> str:
        rank = 0
        for interval in self.states(entity):
            rank = max(rank, HEALTH_STATES.index(interval.state))
        return HEALTH_STATES[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "entities": {
                entity: [i.to_dict() for i in self.states(entity)]
                for entity in self.entities()
            }
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def summary_lines(self) -> list[str]:
        lines: list[str] = []
        for entity in self.entities():
            spans = ", ".join(
                f"{i.state} {i.start_ns / 1e6:.3f}-{i.end_ns / 1e6:.3f} ms"
                for i in self.states(entity)
            )
            lines.append(f"  health {entity}: {spans}")
        return lines

"""fig_scale: multi-primary sharing scaled from 2 to 32 nodes.

The paper's sharing figures (11/12) fix the fleet at 8 nodes and sweep
the shared fraction; this family fixes the workload *shape* and sweeps
the fleet size instead, for both the CXL software-coherency system and
the RDMA (PolarDB-MP) baseline. Each scale point is one self-contained
cluster build + driver run with the full monitoring stack installed —
MemSan, trace invariants, and span invariants must be green at every
point, or the point fails.

Workload shape (why these curves mean what they claim):

* **Warmup scan** — every node's first transaction reads across the
  whole shared table, so every node *registers* on (roughly) every
  leaf. A broadcast invalidation protocol pays O(fleet) flag pushes per
  write release forever after.
* **Group-local steady state** — nodes then pair up: each node updates
  its own key block and point-reads its partner's. The set of nodes
  *currently caching* any leaf is a small constant, independent of the
  fleet size.

With the per-page sharer directory, CXL flag pushes per write release
track the second number (current sharers), not the first (registrants),
so the per-release invalidation cost stays flat as the fleet grows —
that is the scalability claim ``fig_scale`` pins. The CXL fusion tier
is sharded ``n_nodes // 4`` ways (:func:`shards_for`) so the metadata
service scales alongside the fleet.

Every scale point is an independent :class:`~repro.parallel.runner.WorkUnit`
(``repro.bench.scale:_scale_unit``), so the curve shards across
processes under ``python -m repro.bench fig_scale --jobs N``.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Optional

from ..analysis.memsan import MemSan
from ..analysis.memsan import active as memsan_active
from ..obs.invariants import assert_span_invariants, assert_trace_invariants
from ..obs.metrics import MetricsPipeline
from ..obs.metrics import active as metrics_active
from ..obs.spans import SpanTracer
from ..obs.spans import active as spans_active
from ..obs.trace import Tracer
from ..obs.trace import active as obs_active
from ..parallel.runner import WorkUnit, raise_for_failures, run_units
from ..sim.rng import WorkloadRng
from ..workloads.base import Op
from ..workloads.driver import SharingDriver
from ..workloads.sysbench import SysbenchWorkload
from .harness import build_sharing_setup, counter_snapshot, register_metric_sources

__all__ = [
    "SCALE_NODES",
    "SCALE_SYSTEMS",
    "shards_for",
    "peer_of",
    "node_keys",
    "make_scale_txn_fn",
    "run_scale_point",
    "run_scale_curve",
]

SCALE_NODES = (2, 4, 8, 16, 32)
SCALE_SYSTEMS = ("rdma", "cxl")

_ROWS = 120
_SCAN_STRIDE = 7
_UPDATES_PER_TXN = 4
_PEER_READS_PER_TXN = 4


def shards_for(n_nodes: int) -> int:
    """Fusion shards for a fleet: one shard per four nodes, minimum one.

    >>> [shards_for(n) for n in (2, 4, 8, 16, 32)]
    [1, 1, 2, 4, 8]
    """
    return max(1, n_nodes // 4)


def peer_of(node_index: int, n_nodes: int) -> int:
    """The node whose key block this node cross-reads (pairs: 0↔1, 2↔3…).

    A node left without a partner (odd fleet) reads its own block.

    >>> [peer_of(i, 4) for i in range(4)]
    [1, 0, 3, 2]
    >>> peer_of(2, 3)
    2
    """
    peer = node_index ^ 1
    return peer if peer < n_nodes else node_index


def node_keys(node_index: int, n_nodes: int, rows: int) -> range:
    """Contiguous sysbench key block (keys are 1-based) owned by a node.

    Blocks tile the table exactly: no gaps, no overlap.

    >>> node_keys(0, 4, 120)
    range(1, 31)
    >>> node_keys(3, 4, 120)
    range(91, 121)
    >>> sum(len(node_keys(i, 5, 121)) for i in range(5))
    121
    """
    low = node_index * rows // n_nodes + 1
    high = (node_index + 1) * rows // n_nodes + 1
    return range(low, high)


def make_scale_txn_fn(n_nodes: int, rows: int = _ROWS):
    """Build the fig_scale transaction function for one cluster.

    The first transaction each node runs (its warmup) is the global
    scan; after that, every transaction is ``_UPDATES_PER_TXN`` updates
    on the node's own key block plus ``_PEER_READS_PER_TXN`` point
    reads of its partner's block. The shared-percentage argument the
    driver passes is ignored — the blocks, not a coin flip, decide
    what is shared here.
    """
    scanned: set[int] = set()

    def txn(rng: WorkloadRng, node_index: int, shared_pct: float) -> list[Op]:
        del shared_pct
        if node_index not in scanned:
            scanned.add(node_index)
            return [
                Op("select", "sbtest_shared", key)
                for key in range(1, rows + 1, _SCAN_STRIDE)
            ]
        mine = node_keys(node_index, n_nodes, rows)
        theirs = node_keys(peer_of(node_index, n_nodes), n_nodes, rows)
        ops = [
            Op(
                "update",
                "sbtest_shared",
                mine[rng.uniform_int(0, len(mine) - 1)],
                field="k",
                value=rng.uniform_int(0, 4095),
            )
            for _ in range(_UPDATES_PER_TXN)
        ]
        ops.extend(
            Op("select", "sbtest_shared", theirs[rng.uniform_int(0, len(theirs) - 1)])
            for _ in range(_PEER_READS_PER_TXN)
        )
        return ops

    return txn


def run_scale_point(
    system: str,
    n_nodes: int,
    seed: int = 7,
    rows: int = _ROWS,
    workers_per_node: int = 2,
    measure_txns: int = 2,
) -> dict:
    """Run one (system, fleet-size) point under the full monitoring stack.

    Returns a flat dict of the point's coordinates, throughput, and the
    mechanism counters the curve assertions need. Installs whichever of
    MemSan / Tracer / SpanTracer is not already active and checks all
    three after the run — a race, a trace violation, or a malformed
    span tree fails the point, at every scale.
    """
    n_shards = shards_for(n_nodes) if system == "cxl" else 1
    tracer = Tracer() if obs_active() is None else None
    span_tracer = SpanTracer() if spans_active() is None else None
    ms: Optional[MemSan] = MemSan() if memsan_active() is None else None
    # REPRO_BENCH_METRICS=1 (the `--metrics` flag) samples every point
    # on the sim-time scrape grid; each point owns a fresh pipeline so
    # serial and --jobs runs publish identical per-point timelines.
    pipeline = (
        MetricsPipeline()
        if os.environ.get("REPRO_BENCH_METRICS") and metrics_active() is None
        else None
    )
    with ms or nullcontext():
        with tracer or nullcontext(), span_tracer or nullcontext():
            with pipeline or nullcontext():
                workload = SysbenchWorkload(rows=rows, n_nodes=n_nodes)
                setup = build_sharing_setup(
                    system, n_nodes, workload, seed=seed, n_shards=n_shards
                )
                if ms is not None:
                    ms.watch_setup(setup)
                register_metric_sources(setup)
                driver = SharingDriver(
                    setup.sim,
                    setup.nodes,
                    setup.hosts,
                    make_scale_txn_fn(n_nodes, rows),
                    shared_pct=100.0,
                    rng=WorkloadRng(seed=seed),
                    workers_per_node=workers_per_node,
                    warmup_txns=1,
                    measure_txns=measure_txns,
                )
                result = driver.run()
                counters = counter_snapshot(setup)
                if pipeline is not None:
                    pipeline.flush(setup.sim.now)
    if tracer is not None:
        assert_trace_invariants(tracer)
    if span_tracer is not None:
        assert_span_invariants(span_tracer)
    if ms is not None:
        ms.check()
    if pipeline is not None:
        pipeline.check_consistent()
    writes = max(1.0, counters.get("lock.write_acquires", 0.0))
    if system == "cxl":
        invalidations = counters.get("fusion_stats.invalidations_pushed", 0.0)
    else:
        invalidations = counters.get("dbp_stats.invalidation_messages", 0.0)
    return {
        "system": system,
        "n_nodes": n_nodes,
        "n_shards": n_shards,
        "tps": result.tps,
        "qps": result.qps,
        "p95_latency_ns": result.p95_latency_ns,
        "write_acquires": counters.get("lock.write_acquires", 0.0),
        "invalidations": invalidations,
        "invalidations_per_release": invalidations / writes,
        "reshares": counters.get("fusion_stats.reshares", 0.0),
        "fusion_rpcs": counters.get("fusion_stats.rpcs", 0.0),
        "dbp_rpcs": counters.get("dbp_stats.rpcs", 0.0),
        "lines_flushed": counters.get("sharing.lines_flushed", 0.0),
        "interconnect_bytes": counters.get("bytes_moved.interconnect", 0.0),
        "memsan_reports": len(ms.reports) if ms is not None else 0,
        **(
            {
                "metrics_scrapes": pipeline.scrapes,
                "metrics_samples": pipeline.samples_published,
                "metrics_dropped": pipeline.total_dropped,
            }
            if pipeline is not None
            else {}
        ),
    }


def _scale_unit(system: str, n_nodes: int, seed: int, rows: int) -> dict:
    """Spawn-safe work unit: one scale point, resolved by import path."""
    return run_scale_point(system, n_nodes, seed=seed, rows=rows)


def run_scale_curve(
    systems=SCALE_SYSTEMS,
    nodes=SCALE_NODES,
    seed: int = 7,
    rows: int = _ROWS,
    jobs: int = 1,
) -> list[dict]:
    """Run the whole curve; returns one dict per (system, n_nodes) point.

    ``jobs > 1`` shards the points across a spawn pool — each point is
    a fresh interpreter with its own MemSan, so the merged result is
    byte-identical to a serial run (see :mod:`repro.parallel.runner`).
    Results are ordered system-major, fleet-size-minor.
    """
    units = [
        WorkUnit(
            "repro.bench.scale:_scale_unit",
            (system, n_nodes, seed, rows),
            label=f"{system}/{n_nodes}",
            repro=(
                "PYTHONPATH=src python -c \"from repro.bench.scale import "
                f"run_scale_point; print(run_scale_point('{system}', "
                f"{n_nodes}, seed={seed}, rows={rows}))\""
            ),
        )
        for system in systems
        for n_nodes in nodes
    ]
    results = run_units(units, jobs=jobs)
    raise_for_failures(results, what="fig_scale curve")
    return [result.value for result in results]

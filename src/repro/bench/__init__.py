"""Experiment harness and per-figure experiment implementations."""

from .harness import (
    PoolingSetup,
    SharingSetup,
    SYSTEMS,
    build_pooling_setup,
    build_sharing_setup,
    reset_meters,
)
from .microbench import (
    TABLE1_PAPER,
    TABLE2_PAPER,
    measure_load_latency,
    measure_transfer_latency,
    table1_rows,
    table2_rows,
)
from .recovery_exp import (
    RECOVERY_SCHEMES,
    RecoveryTimeline,
    run_recovery_experiment,
)
from .report import banner, format_series, format_table, improvement_pct

__all__ = [
    "PoolingSetup",
    "SharingSetup",
    "SYSTEMS",
    "build_pooling_setup",
    "build_sharing_setup",
    "reset_meters",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "measure_load_latency",
    "measure_transfer_latency",
    "table1_rows",
    "table2_rows",
    "RECOVERY_SCHEMES",
    "RecoveryTimeline",
    "run_recovery_experiment",
    "banner",
    "format_series",
    "format_table",
    "improvement_pct",
]

"""Microbenchmarks regenerating the paper's Tables 1 and 2.

These measure the *model through its real access paths* — the same
``MappedMemory`` / ``RdmaNic`` machinery the engine uses — not the
config constants directly, so a regression in the charging logic shows
up as a wrong table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cache import LineCacheModel
from ..hardware.host import cxl_timing, dram_timing
from ..hardware.memory import AccessMeter, MappedMemory, MemoryRegion
from ..hardware.rdma import RdmaNic
from ..sim.core import Simulator
from ..sim.latency import LatencyConfig

__all__ = [
    "measure_load_latency",
    "table1_rows",
    "measure_transfer_latency",
    "table2_rows",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
]

# Paper Table 1 (ns): memory kind -> (local, remote).
TABLE1_PAPER = {
    "dram": (146.0, 231.0),
    "cxl_no_switch": (265.2, 345.9),
    "cxl_switch": (549.0, 651.0),
}

# Paper Table 2 (µs): size -> (rdma_write, cxl_write, rdma_read, cxl_read).
TABLE2_PAPER = {
    64: (4.48, 0.78, 4.55, 0.75),
    512: (4.69, 0.84, 4.79, 0.85),
    1024: (4.77, 0.88, 4.91, 1.07),
    4096: (5.06, 1.02, 5.58, 1.86),
    16384: (6.12, 1.68, 7.13, 2.46),
}


def _mapped(kind: str, remote: bool, meter: AccessMeter) -> MappedMemory:
    config = LatencyConfig()
    region = MemoryRegion(f"bench.{kind}.{remote}", 1 << 22, volatile=False)
    # A 1-line cache: every fresh address misses, like MLC's pointer chase.
    cache = LineCacheModel(capacity_bytes=64)
    if kind == "dram":
        timing = dram_timing(config, remote_numa=remote)
    elif kind == "cxl_no_switch":
        timing = cxl_timing(config, remote_numa=remote, through_switch=False)
    elif kind == "cxl_switch":
        timing = cxl_timing(config, remote_numa=remote, through_switch=True)
    else:
        raise ValueError(kind)
    return MappedMemory(region, timing, meter, cache, counter_key=kind)


def measure_load_latency(kind: str, remote: bool, accesses: int = 512) -> float:
    """Average ns per dependent 8-byte load (MLC-style), via the model."""
    meter = AccessMeter()
    mapped = _mapped(kind, remote, meter)
    offset = 64
    for _ in range(accesses):
        mapped.read(offset, 8)
        offset = (offset * 31 + 4096) % ((1 << 22) - 64)
        offset -= offset % 64
    return meter.ns / accesses


def table1_rows() -> list[tuple[str, float, float, float, float]]:
    """(kind, local_measured, local_paper, remote_measured, remote_paper)."""
    rows = []
    for kind, (paper_local, paper_remote) in TABLE1_PAPER.items():
        rows.append(
            (
                kind,
                measure_load_latency(kind, remote=False),
                paper_local,
                measure_load_latency(kind, remote=True),
                paper_remote,
            )
        )
    return rows


@dataclass
class TransferLatency:
    size: int
    rdma_write_us: float
    cxl_write_us: float
    rdma_read_us: float
    cxl_read_us: float


def measure_transfer_latency(size: int) -> TransferLatency:
    """One read + one write of ``size`` bytes through each interconnect.

    RDMA goes through an actual :class:`RdmaNic` inside a simulation so
    the measured number includes pipe occupancy; CXL uses the burst
    charging of a metered mapping.
    """
    sim = Simulator()
    nic = RdmaNic(sim, "bench-nic")

    def timed(event_factory) -> float:
        start = sim.now
        done = event_factory()
        marker = {}
        done.callbacks.append(lambda e: marker.setdefault("t", sim.now))
        sim.run()
        return marker["t"] - start

    rdma_write = timed(lambda: nic.write(size))
    rdma_read = timed(lambda: nic.read(size))

    meter = AccessMeter()
    config = LatencyConfig()
    region = MemoryRegion("bench.cxl", 1 << 21, volatile=False)
    cache = LineCacheModel(capacity_bytes=64)
    mapped = MappedMemory(
        region,
        cxl_timing(config, through_switch=True),
        meter,
        cache,
        counter_key="cxl",
    )
    # Force the burst path even for 64 B (Table 2 measures copies, not
    # cached loads): charge via the config model directly for sub-line
    # sizes, via the mapping otherwise.
    if size >= 256:
        before = meter.ns
        mapped.write(0, b"\xAA" * size)
        cxl_write = meter.ns - before
        before = meter.ns
        mapped.read(0, size)
        cxl_read = meter.ns - before
    else:
        cxl_write = config.cxl_write_ns(size)
        cxl_read = config.cxl_read_ns(size)

    return TransferLatency(
        size=size,
        rdma_write_us=rdma_write / 1e3,
        cxl_write_us=cxl_write / 1e3,
        rdma_read_us=rdma_read / 1e3,
        cxl_read_us=cxl_read / 1e3,
    )


def table2_rows() -> list[tuple[int, float, float, float, float, float, float, float, float]]:
    """(size, then measured/paper pairs for each of the 4 columns)."""
    rows = []
    for size, paper in TABLE2_PAPER.items():
        measured = measure_transfer_latency(size)
        rows.append(
            (
                size,
                measured.rdma_write_us,
                paper[0],
                measured.cxl_write_us,
                paper[1],
                measured.rdma_read_us,
                paper[2],
                measured.cxl_read_us,
                paper[3],
            )
        )
    return rows

"""Formatting helpers for benchmark output.

Benchmarks print the same rows/series the paper reports, as aligned
ASCII tables, so ``pytest benchmarks/ --benchmark-only -s`` regenerates
a readable version of every table and figure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "improvement_pct", "banner"]


def banner(title: str) -> str:
    rule = "=" * max(64, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align columns; floats get 2 decimals, everything else str()."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, series: Sequence[tuple[float, float]], y_unit: str = "K-QPS"
) -> str:
    """A compact sparkline-ish rendering of a time series."""
    if not series:
        return f"{name}: (empty)"
    peak = max(value for _, value in series) or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    chars = "".join(
        blocks[min(8, int(9 * value / peak))] if peak else " "
        for _, value in series
    )
    return (
        f"{name}: [{chars}] peak={peak / 1e3:.0f}{y_unit} "
        f"span={series[0][0]:.2f}s..{series[-1][0]:.2f}s"
    )


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return (improved / baseline - 1.0) * 100.0


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

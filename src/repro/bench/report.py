"""Formatting helpers for benchmark output.

Benchmarks print the same rows/series the paper reports, as aligned
ASCII tables, so ``pytest benchmarks/ --benchmark-only -s`` regenerates
a readable version of every table and figure.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_series",
    "format_counters",
    "format_span_breakdown",
    "format_metrics_dashboard",
    "dump_counters_json",
    "dump_metrics_json",
    "improvement_pct",
    "banner",
]


def banner(title: str) -> str:
    rule = "=" * max(64, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Align columns; floats get 2 decimals, everything else str()."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, series: Sequence[tuple[float, float]], y_unit: str = "K-QPS"
) -> str:
    """A compact sparkline-ish rendering of a time series."""
    if not series:
        return f"{name}: (empty)"
    peak = max(value for _, value in series) or 1.0
    blocks = " ▁▂▃▄▅▆▇█"
    chars = "".join(
        blocks[min(8, int(9 * value / peak))] if peak else " "
        for _, value in series
    )
    return (
        f"{name}: [{chars}] peak={peak / 1e3:.0f}{y_unit} "
        f"span={series[0][0]:.2f}s..{series[-1][0]:.2f}s"
    )


def format_counters(
    snapshots: Mapping[str, Mapping[str, float]], title: str = "mechanism counters"
) -> str:
    """Render per-run counter snapshots side by side, grouped by prefix.

    ``snapshots`` maps a run label (e.g. ``"cxl"``/``"rdma"``) to the
    dict returned by :func:`repro.bench.harness.counter_snapshot`. The
    union of counter names becomes the rows; a blank group line is
    inserted whenever the dotted prefix changes, so ``mem.*``, ``pool.*``
    and ``bytes_moved.*`` read as blocks.
    """
    labels = list(snapshots)
    names = sorted({name for snap in snapshots.values() for name in snap})
    rows: list[list[object]] = []
    previous_group = None
    for name in names:
        group = name.split(".", 1)[0]
        if previous_group is not None and group != previous_group:
            rows.append([""] * (1 + len(labels)))
        previous_group = group
        rows.append(
            [name] + [_count_cell(snapshots[label].get(name)) for label in labels]
        )
    return banner(title) + "\n" + format_table(["counter"] + labels, rows)


def format_span_breakdown(breakdown, title: str = "span latency breakdown") -> str:
    """Render a :class:`~repro.obs.critical_path.MechanismBreakdown`.

    One row per mechanism bucket, largest share first (``unattributed``
    last), with per-transaction percentile latencies from the span
    recorders. The footer states the coverage the ≥95 % acceptance
    criterion is judged on.
    """
    rows: list[list[object]] = []
    for kind in breakdown.kinds():
        recorder = breakdown.per_txn.get(kind)
        rows.append(
            [
                kind,
                f"{100 * breakdown.fraction(kind):.1f}%",
                _ns_cell(breakdown.buckets[kind] / max(1, breakdown.txns)),
                _ns_cell(recorder.percentile_ns(50) if recorder else 0.0),
                _ns_cell(recorder.percentile_ns(95) if recorder else 0.0),
                _ns_cell(recorder.percentile_ns(99) if recorder else 0.0),
            ]
        )
    table = format_table(
        ["mechanism", "share", "avg/txn", "p50/txn", "p95/txn", "p99/txn"], rows
    )
    footer = (
        f"txns={breakdown.txns}  total={breakdown.total_ns / 1e6:.2f} ms  "
        f"coverage={100 * breakdown.coverage:.2f}%"
    )
    return banner(title) + "\n" + table + "\n" + footer


def format_metrics_dashboard(
    pipeline, title: str = "metrics dashboard", max_series: int = 40
) -> str:
    """Render a scraped :class:`~repro.obs.metrics.MetricsPipeline` as
    per-series ASCII sparklines.

    One row per series (sorted by id, capped at ``max_series``):
    sparkline over the sampled window, last value, peak, and sample
    count. The header states the scrape interval and totals, so a
    dashboard is self-describing about its own resolution.
    """
    blocks = " ▁▂▃▄▅▆▇█"
    all_series = pipeline.all_series()
    lines = [
        banner(title),
        (
            f"interval={pipeline.scrape_interval_ns / 1e3:.0f} us  "
            f"scrapes={pipeline.scrapes}  "
            f"samples={pipeline.samples_published}  "
            f"series={len(all_series)}  "
            f"dropped={pipeline.total_dropped}"
        ),
    ]
    width = max((len(series.id) for series in all_series[:max_series]), default=0)
    for series in all_series[:max_series]:
        values = series.values()
        peak = max((abs(v) for v in values), default=0.0)
        chars = "".join(
            blocks[min(8, int(9 * abs(value) / peak))] if peak else " "
            for value in values[-60:]
        )
        last = values[-1] if values else 0.0
        lines.append(
            f"{series.id.ljust(width)} [{chars}] "
            f"last={_count_cell(last)} peak={_count_cell(peak)} n={len(values)}"
        )
    if len(all_series) > max_series:
        lines.append(f"... {len(all_series) - max_series} more series elided")
    return "\n".join(lines)


def dump_metrics_json(path, pipeline) -> None:
    """Write the pipeline's canonical JSON timeline to ``path``.

    Delegates to :meth:`~repro.obs.metrics.MetricsPipeline.to_json`
    (sorted keys, fixed indent, trailing newline) so serial and
    ``--jobs`` runs of the same simulation diff byte-identical.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(pipeline.to_json())


def _ns_cell(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} us"
    return f"{ns:.0f} ns"


def dump_counters_json(path, snapshots: Mapping[str, Mapping[str, float]]) -> None:
    """Write counter snapshots as JSON (ints stay ints for diffability)."""
    payload = {
        label: {name: _json_number(value) for name, value in snap.items()}
        for label, snap in snapshots.items()
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _json_number(value: float):
    return int(value) if float(value).is_integer() else value


def _count_cell(value) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:.3f}"


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return (improved / baseline - 1.0) * 100.0


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

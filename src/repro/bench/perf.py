# repro-lint: allow-file(REPRO001) -- wall-clock measurement is this
# module's whole purpose; simulation code must stay on virtual time.
"""Wall-clock performance harness: ``python -m repro.bench perf``.

The ROADMAP's north star includes "runs as fast as the hardware allows";
this module is the perf trajectory for that claim. It measures the three
hot paths every benchmark funnels through — the event loop, metered
memory accesses, and an end-to-end figure-7 slice — and writes the
results to ``BENCH_perf.json`` at the repo root.

Machine-independence: absolute events/sec numbers are useless as CI
gates (runners differ wildly), so the headline metrics are *speedup
ratios* against frozen **reference implementations** — verbatim copies
of the pre-optimization kernel and access-metering code, run in the same
process on the same machine moments apart. The reference numbers ARE the
pre-PR baseline, re-measured fresh on every run; the harness asserts the
optimized paths stay at least ``--min-speedup`` (default 1.5×) ahead.
If an intentional change makes the ratio drop below the gate, either
recover the loss or update the reference code to the new baseline and
say so in PERFORMANCE.md.

Behavioral identity (same simulated time, same counters) is asserted
separately by the pinned snapshots in ``tests/bench/``; this harness
additionally cross-checks that the optimized and reference access paths
charge *identical* meter state on an identical access pattern.
"""

from __future__ import annotations

import heapq
import json
import pathlib
import sys
import time
from dataclasses import dataclass

from ..hardware.cache import LineCacheModel
from ..hardware.memory import (
    AccessMeter,
    MappedMemory,
    MemoryRegion,
    MemoryTiming,
)
from ..obs.spans import SpanTracer
from ..obs.trace import Tracer
from ..sim.core import SchedulerHook, Simulator
from ..sim.latency import CACHE_LINE, LatencyConfig

__all__ = ["run_perf", "main"]

PAGE = 16384


# ---------------------------------------------------------------------------
# Frozen pre-optimization reference implementations (the pre-PR baseline).
# Verbatim hot-path logic from the seed revision — do not "improve" these:
# their whole value is being the yardstick the optimized code is measured
# against.
# ---------------------------------------------------------------------------


class _RefEvent:
    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_fired")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._triggered = False
        self._fired = False

    @property
    def value(self):
        return self._value

    @property
    def triggered(self):
        return self._triggered

    def succeed(self, value=None, delay=0):
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self.sim.now + delay, self)
        return self

    def _fire(self):
        if self._fired:
            raise RuntimeError("event fired twice")
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class _RefTimeout(_RefEvent):
    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        super().__init__(sim)
        self.succeed(value, delay=int(delay))


class _RefProcess(_RefEvent):
    __slots__ = ("generator", "name")

    def __init__(self, sim, generator, name=""):
        super().__init__(sim)
        self.generator = generator
        self.name = name
        bootstrap = _RefEvent(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event):
        try:
            target = self.generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        target.callbacks.append(self._resume)


class _RefSimulator:
    def __init__(self) -> None:
        self.now = 0
        self._queue = []
        self._seq = 0

    def timeout(self, delay, value=None):
        return _RefTimeout(self, delay, value)

    def process(self, generator, name=""):
        return _RefProcess(self, generator, name)

    def _schedule(self, at, event):
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event))

    def run(self):
        queue = self._queue
        while queue:
            at, _, event = queue[0]
            heapq.heappop(queue)
            self.now = at
            event._fire()

    def run_process(self, generator):
        proc = self.process(generator)
        self.run()
        return proc.value


@dataclass(frozen=True)
class _RefCharge:
    pipe_key: str
    nbytes: int
    base_ns: float = 0.0


class _RefMeter:
    def __init__(self) -> None:
        self.ns = 0.0
        self.transfers = []
        self.counters = {}

    def charge_ns(self, ns):
        self.ns += ns

    def count(self, key, amount=1.0):
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def charge_transfer(self, pipe_key, nbytes, base_ns=0.0):
        self.transfers.append(_RefCharge(pipe_key, nbytes, base_ns))
        self.count(pipe_key + "_bytes", nbytes)
        self.count(pipe_key + "_ops", 1)

    def take(self):
        ns, self.ns = self.ns, 0.0
        transfers, self.transfers = self.transfers, []
        return ns, transfers


class _RefLineCache:
    def __init__(self, capacity_bytes=32 << 20) -> None:
        from collections import OrderedDict

        self.capacity_lines = capacity_bytes // CACHE_LINE
        self._lines = OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, region_name, line):
        key = (region_name, line)
        lines = self._lines
        if key in lines:
            lines.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        lines[key] = None
        if len(lines) > self.capacity_lines:
            lines.popitem(last=False)
        return False


class _RefMappedMemory:
    """Pre-PR ``MappedMemory._charge``: per-access latency arithmetic,
    per-line ``touch`` calls, per-access counter-key string building."""

    def __init__(self, region, timing, meter, line_cache, counter_key) -> None:
        self.region = region
        self.timing = timing
        self.meter = meter
        self.line_cache = line_cache
        self.counter_key = counter_key

    def read(self, offset, nbytes):
        self._charge(offset, nbytes, write=False)
        return self.region.read(offset, nbytes)

    def _charge(self, offset, nbytes, write):
        timing = self.timing
        meter = self.meter
        if nbytes >= timing.burst_threshold:
            if write:
                meter.charge_ns(
                    timing.write_burst_base_ns + nbytes * timing.write_burst_ns_per_byte
                )
            else:
                meter.charge_ns(
                    timing.read_burst_base_ns + nbytes * timing.read_burst_ns_per_byte
                )
            device_bytes = nbytes
        else:
            first_line = offset // CACHE_LINE
            last_line = (offset + max(nbytes, 1) - 1) // CACHE_LINE
            hits = 0
            misses = 0
            for line in range(first_line, last_line + 1):
                if self.line_cache.touch(self.region.name, line):
                    hits += 1
                else:
                    misses += 1
            meter.charge_ns(misses * timing.miss_ns + hits * timing.hit_ns)
            device_bytes = misses * CACHE_LINE
        meter.count(self.counter_key + "_touched_bytes", nbytes)
        if timing.pipe_key is not None and device_bytes:
            meter.charge_transfer(timing.pipe_key, device_bytes, timing.pipe_base_ns)


# ---------------------------------------------------------------------------
# Workloads (identical shapes run against optimized and reference code).
# ---------------------------------------------------------------------------


def _cxl_timing(config: LatencyConfig) -> MemoryTiming:
    return MemoryTiming(
        miss_ns=config.cxl_switch_local_ns,
        hit_ns=18.0,
        read_burst_base_ns=config.cxl_read_base_ns,
        read_burst_ns_per_byte=config.cxl_read_ns_per_byte,
        write_burst_base_ns=config.cxl_write_base_ns,
        write_burst_ns_per_byte=config.cxl_write_ns_per_byte,
        pipe_key="cxl",
    )


def _build_mapped(optimized: bool, region_bytes: int):
    region = MemoryRegion("perf", region_bytes, volatile=False)
    timing = _cxl_timing(LatencyConfig())
    if optimized:
        meter = AccessMeter()
        mapped = MappedMemory(region, timing, meter, LineCacheModel(1 << 20), "cxl")
    else:
        meter = _RefMeter()
        mapped = _RefMappedMemory(region, timing, meter, _RefLineCache(1 << 20), "cxl")
    return mapped, meter


def _drain(meter) -> None:
    meter.take()
    meter.counters.clear()


def bench_event_loop(n_events: int, optimized: bool = True) -> float:
    """Timeout-chain throughput of the kernel; returns events/second."""
    sim = Simulator() if optimized else _RefSimulator()

    def chain():
        timeout = sim.timeout
        for _ in range(n_events):
            yield timeout(10)

    start = time.perf_counter()
    sim.run_process(chain())
    elapsed = time.perf_counter() - start
    return n_events / elapsed


def bench_event_burst(
    n_events: int, optimized: bool = True, batch: int = 32
) -> float:
    """Same-tick burst throughput of the kernel; returns events/second.

    Schedules ``batch`` timeouts per tick and resumes on the last one —
    the settle layer's shape, where one batched pipe transfer completes
    many waiters on the same tick. This is the bench the bucketed
    calendar queue exists for: one heap operation retires the whole
    tick, so the ``event_burst`` speedup gate holds the batching win
    against the frozen plain-heap reference.
    """
    sim = Simulator() if optimized else _RefSimulator()
    n_batches = n_events // batch

    def burster():
        timeout = sim.timeout
        for _ in range(n_batches):
            for _ in range(batch - 1):
                timeout(10)
            yield timeout(10)

    start = time.perf_counter()
    sim.run_process(burster())
    elapsed = time.perf_counter() - start
    return (n_batches * batch) / elapsed


def bench_sweep_parallel(limit: int, jobs: int) -> dict:
    """Wall-clock of a crash-sweep slice, serial vs ``--jobs N``.

    Runs the same ``sweep_workload_points`` coordinate slice twice and
    reports the ratio plus whether the merged reports are byte-identical
    (they must always be; the speedup gate itself only applies on
    machines with enough cores to show one — a 1-core runner records the
    ratio but skips the gate, since a spawn pool cannot beat serial
    there).
    """
    import os

    from ..faults.sweep import report_to_json, sweep_workload_points

    cpu_count = os.cpu_count() or 1
    if jobs <= 0:
        jobs = cpu_count
    start = time.perf_counter()
    serial = sweep_workload_points(jobs=1, limit=limit)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = sweep_workload_points(jobs=jobs, limit=limit)
    parallel_s = time.perf_counter() - start
    return {
        "limit": limit,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "merged_identical": report_to_json(serial) == report_to_json(parallel),
    }


def bench_metered_access(n_accesses: int, optimized: bool = True) -> float:
    """32 B metered reads/second through the line-cache cost model.

    The working set (4× the line-cache capacity) forces a steady mix of
    hits and misses, matching what pool metadata traffic looks like.
    """
    region_bytes = 4 << 20
    mapped, meter = _build_mapped(optimized, region_bytes)
    n_slots = region_bytes // 32
    start = time.perf_counter()
    read = mapped.read
    for i in range(n_accesses):
        read((i * 7919 % n_slots) * 32, 32)
        if not i % 4096:
            _drain(meter)
    elapsed = time.perf_counter() - start
    return n_accesses / elapsed


def bench_page_burst(n_pages: int, optimized: bool = True) -> float:
    """16 KB burst reads/second (page-granular transfer path)."""
    region_bytes = 8 << 20
    mapped, meter = _build_mapped(optimized, region_bytes)
    n_slots = region_bytes // PAGE
    start = time.perf_counter()
    read = mapped.read
    for i in range(n_pages):
        read((i % n_slots) * PAGE, PAGE)
        if not i % 512:
            _drain(meter)
    elapsed = time.perf_counter() - start
    return n_pages / elapsed


def bench_tracer_overhead(n_accesses: int) -> tuple[float, float]:
    """(tracer-off, tracer-on) metered reads/second on the optimized path."""
    off = bench_metered_access(n_accesses, optimized=True)
    region_bytes = 4 << 20
    mapped, meter = _build_mapped(True, region_bytes)
    n_slots = region_bytes // 32
    with Tracer():
        start = time.perf_counter()
        read = mapped.read
        for i in range(n_accesses):
            read((i * 7919 % n_slots) * 32, 32)
            if not i % 4096:
                _drain(meter)
        elapsed = time.perf_counter() - start
    return off, n_accesses / elapsed


def bench_spans_overhead(n_accesses: int) -> tuple[float, float]:
    """(spans-off, spans-on) metered reads/second on the optimized path.

    The "off" side is the instrumented code with no SpanTracer installed
    — one global load plus a None check per access — and is what the
    ``disabled_speedup`` gate holds against the pre-PR reference. The
    "on" side attaches a span so every access also lands a ``costs``
    charge, the worst case for the hot path.
    """
    off = bench_metered_access(n_accesses, optimized=True)
    region_bytes = 4 << 20
    mapped, meter = _build_mapped(True, region_bytes)
    n_slots = region_bytes // 32
    with SpanTracer() as spans:
        root = spans.begin("txn", "perf")
        start = time.perf_counter()
        read = mapped.read
        for i in range(n_accesses):
            read((i * 7919 % n_slots) * 32, 32)
            if not i % 4096:
                _drain(meter)
        elapsed = time.perf_counter() - start
        spans.end(root)
    return off, n_accesses / elapsed


def bench_memsan_overhead(n_accesses: int) -> tuple[float, float]:
    """(memsan-off, memsan-on) metered reads/second on the optimized path.

    The "off" side is the instrumented code with no MemSan installed —
    one global load plus a None check per region access — and is what
    the ``disabled_speedup`` gate under ``memsan_overhead`` holds
    against the pre-PR reference. The "on" side watches the region and
    runs inside an actor scope, so every access walks the per-line
    vector-clock state: the priced, opt-in debugging mode.
    """
    from ..analysis.memsan import MemSan

    off = bench_metered_access(n_accesses, optimized=True)
    region_bytes = 4 << 20
    mapped, meter = _build_mapped(True, region_bytes)
    n_slots = region_bytes // 32
    with MemSan() as ms:
        ms.watch_region("perf")
        with ms.actor("perf-bench"):
            start = time.perf_counter()
            read = mapped.read
            for i in range(n_accesses):
                read((i * 7919 % n_slots) * 32, 32)
                if not i % 4096:
                    _drain(meter)
            elapsed = time.perf_counter() - start
        ms.check()
    return off, n_accesses / elapsed


def bench_metrics_overhead(n_ops: int) -> tuple[float, float]:
    """(metrics-off, metrics-on) instrumented ops/second.

    The "off" side is the hot-path discipline every instrumented module
    uses when no pipeline is installed — one global load plus a None
    check per op, nothing else. The "on" side installs a pipeline and
    pays the full live-telemetry price per op: a labeled counter add, a
    latency observation, and a ``maybe_scrape`` against an advancing
    synthetic clock that crosses a scrape-grid boundary every 16 ops.
    The ``disabled_speedup`` gate (off/on) pins the contract that an
    uninstalled pipeline costs (nearly) nothing relative to scraping.
    """
    from ..obs.metrics import MetricsPipeline
    from ..obs.metrics import active as metrics_active

    start = time.perf_counter()
    for _ in range(n_ops):
        mp = metrics_active()
        if mp is not None:  # pragma: no cover - nothing installed here
            mp.count("perf.ops", 1.0)
    off = n_ops / (time.perf_counter() - start)

    with MetricsPipeline() as pipeline:
        now = 0.0
        step = pipeline.scrape_interval_ns / 16.0
        start = time.perf_counter()
        for i in range(n_ops):
            mp = metrics_active()
            if mp is not None:
                now += step
                mp.count("perf.ops", 1.0, worker="w0")
                mp.observe("perf.latency_ns", float(i & 4095), worker="w0")
                mp.maybe_scrape(now)
        elapsed = time.perf_counter() - start
        assert pipeline.scrapes > 0
        on = n_ops / elapsed
    return off, on


def bench_fig7_slice() -> dict:
    """End-to-end slice of the figure-7 pooling benchmark (CXL system)."""
    from ..workloads.driver import PoolingDriver
    from ..workloads.sysbench import SysbenchWorkload
    from .harness import build_pooling_setup

    workload = SysbenchWorkload(rows=2000)
    setup = build_pooling_setup("cxl", n_instances=2, workload=workload)
    driver = PoolingDriver(
        setup.sim,
        setup.instances,
        workload.txn_fn("point_select"),
        workers_per_instance=8,
        warmup_txns=20,
        measure_txns=150,
    )
    start = time.perf_counter()
    result = driver.run()
    wall_s = time.perf_counter() - start
    events = setup.sim._seq
    return {
        "wall_s": round(wall_s, 4),
        "qps": round(result.qps, 2),
        "avg_latency_ns": round(result.avg_latency_ns, 1),
        "events_scheduled": events,
        "events_per_wall_second": round(events / wall_s),
    }


def check_kernel_order(n_events: int = 5_000) -> None:
    """Assert the bucketed kernel fires in the heap reference's order.

    Drives an identical schedule — LCG-spread delays with heavy
    same-tick collisions, plus cascades that schedule zero-delay and
    short-delay follow-ups from inside callbacks — through the optimized
    :class:`Simulator` and the frozen ``_RefSimulator``, logging every
    callback as ``(tag, now, value)``. The two logs (and final clocks)
    must match exactly: the calendar queue is an optimization, not a
    semantic change.
    """

    def drive(sim, new_event, log):
        def cascade(event):
            log.append(("fire", sim.now, event.value))
            if event.value % 7 == 0:
                follow = new_event()
                follow.callbacks.append(
                    lambda e: log.append(("follow", sim.now, e.value))
                )
                delay = 0 if event.value % 14 else 5
                follow.succeed(event.value + 1_000_000, delay=delay)

        lcg = 99991
        for i in range(n_events):
            lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
            event = new_event()
            event.callbacks.append(cascade)
            event.succeed(i, delay=lcg % 37)
        sim.run()
        return sim.now

    opt_sim = Simulator()
    opt_log: list = []
    opt_now = drive(opt_sim, opt_sim.event, opt_log)
    ref_sim = _RefSimulator()
    ref_log: list = []
    ref_now = drive(ref_sim, lambda: _RefEvent(ref_sim), ref_log)
    hook_sim = Simulator()
    hook_sim.scheduler = SchedulerHook()  # default strategy, hooked path
    hook_log: list = []
    hook_now = drive(hook_sim, hook_sim.event, hook_log)
    if opt_now != ref_now or hook_now != ref_now:
        raise AssertionError(
            f"kernel clocks diverged: opt {opt_now} / hooked {hook_now} "
            f"!= ref {ref_now}"
        )
    for tag, log in (("optimized", opt_log), ("hooked", hook_log)):
        if log == ref_log:
            continue
        first = next(
            i for i, (a, b) in enumerate(zip(log, ref_log)) if a != b
        )
        raise AssertionError(
            f"{tag} kernel firing order diverged from the heap reference "
            f"at event {first}: {log[first]} != {ref_log[first]}"
        )


def bench_explore() -> dict:
    """Schedule-exploration throughput and pruning effectiveness.

    Exhaustively explores the mixed-dependency toy program (the
    property-test config with a known trace-minimal schedule count) and
    the flagship ``cxl-2p1pg`` protocol config, recording schedules/sec
    and the explored/naive pruning ratios the CI gate rides on.
    """
    from ..analysis.explore import explore_config

    start = time.perf_counter()
    toy = explore_config("toy-mixed")
    protocol = explore_config("cxl-2p1pg")
    wall_s = time.perf_counter() - start
    schedules = toy.schedules + protocol.schedules
    return {
        "toy_schedules": toy.schedules,
        "toy_naive": toy.naive_estimate,
        "toy_ratio": round(toy.pruning_ratio, 6),
        "protocol_schedules": protocol.schedules,
        "protocol_runs": protocol.runs,
        "protocol_naive": protocol.naive_estimate,
        "protocol_ratio": round(protocol.pruning_ratio, 6),
        "clean": toy.ok and protocol.ok,
        "wall_s": round(wall_s, 4),
        "schedules_per_sec": round(schedules / wall_s, 1),
    }


def check_equivalence(n_accesses: int = 20_000) -> None:
    """Assert optimized and reference metering charge identical state."""
    region_bytes = 1 << 20
    opt, opt_meter = _build_mapped(True, region_bytes)
    ref, ref_meter = _build_mapped(False, region_bytes)
    # A mix of line-cached small reads (several sizes/alignments, some
    # straddling lines) and burst reads, identical on both sides.
    for i in range(n_accesses):
        offset = (i * 4093) % (region_bytes - PAGE)
        if not i % 97:
            nbytes = PAGE
        elif not i % 13:
            nbytes = 200
        else:
            nbytes = 8 + (i % 3) * 61  # 8 / 69 / 130 B, may straddle lines
        opt.read(offset, nbytes)
        ref.read(offset, nbytes)
    if opt_meter.ns != ref_meter.ns:
        raise AssertionError(
            f"optimized metering diverged: ns {opt_meter.ns} != {ref_meter.ns}"
        )
    if opt_meter.counters != ref_meter.counters:
        raise AssertionError("optimized metering diverged: counters differ")
    opt_t = [(c.pipe_key, c.nbytes, c.base_ns) for c in opt_meter.transfers]
    ref_t = [(c.pipe_key, c.nbytes, c.base_ns) for c in ref_meter.transfers]
    if opt_t != ref_t:
        raise AssertionError("optimized metering diverged: transfers differ")


# ---------------------------------------------------------------------------
# Harness entry points
# ---------------------------------------------------------------------------


def run_perf(quick: bool = False, jobs: int = 0) -> dict:
    """Run every perf benchmark; returns the BENCH_perf.json payload."""
    scale = 0.2 if quick else 1.0
    n_events = int(500_000 * scale)
    n_accesses = int(300_000 * scale)
    n_pages = int(100_000 * scale)

    check_equivalence()
    check_kernel_order()

    ev_ref = bench_event_loop(n_events, optimized=False)
    ev_opt = bench_event_loop(n_events, optimized=True)
    eb_ref = bench_event_burst(n_events, optimized=False)
    eb_opt = bench_event_burst(n_events, optimized=True)
    ma_ref = bench_metered_access(n_accesses, optimized=False)
    ma_opt = bench_metered_access(n_accesses, optimized=True)
    pb_ref = bench_page_burst(n_pages, optimized=False)
    pb_opt = bench_page_burst(n_pages, optimized=True)
    tr_off, tr_on = bench_tracer_overhead(n_accesses)
    sp_off, sp_on = bench_spans_overhead(n_accesses)
    msn_off, msn_on = bench_memsan_overhead(n_accesses)
    mt_off, mt_on = bench_metrics_overhead(n_accesses)
    sweep_parallel = bench_sweep_parallel(limit=3 if quick else 8, jobs=jobs)
    fig7 = bench_fig7_slice()
    explore = bench_explore()

    return {
        "schema": 1,
        "quick": quick,
        "event_loop": {
            "events_per_sec": round(ev_opt),
            "reference_per_sec": round(ev_ref),
            "speedup": round(ev_opt / ev_ref, 3),
        },
        "event_burst": {
            "events_per_sec": round(eb_opt),
            "reference_per_sec": round(eb_ref),
            "speedup": round(eb_opt / eb_ref, 3),
        },
        "metered_access": {
            "accesses_per_sec": round(ma_opt),
            "reference_per_sec": round(ma_ref),
            "speedup": round(ma_opt / ma_ref, 3),
        },
        "page_burst": {
            "pages_per_sec": round(pb_opt),
            "reference_per_sec": round(pb_ref),
            "speedup": round(pb_opt / pb_ref, 3),
        },
        "tracer_overhead": {
            "tracer_off_per_sec": round(tr_off),
            "tracer_on_per_sec": round(tr_on),
            "overhead_pct": round((tr_off / tr_on - 1.0) * 100, 1),
        },
        "spans_overhead": {
            "spans_off_per_sec": round(sp_off),
            "spans_on_per_sec": round(sp_on),
            "overhead_pct": round((sp_off / sp_on - 1.0) * 100, 1),
            "disabled_speedup": round(sp_off / ma_ref, 3),
        },
        "memsan_overhead": {
            "memsan_off_per_sec": round(msn_off),
            "memsan_on_per_sec": round(msn_on),
            "overhead_pct": round((msn_off / msn_on - 1.0) * 100, 1),
            "disabled_speedup": round(msn_off / ma_ref, 3),
        },
        "metrics_overhead": {
            "metrics_off_per_sec": round(mt_off),
            "metrics_on_per_sec": round(mt_on),
            "overhead_pct": round((mt_off / mt_on - 1.0) * 100, 1),
            "disabled_speedup": round(mt_off / mt_on, 3),
        },
        "sweep_parallel": sweep_parallel,
        "fig7_slice": fig7,
        "explore": explore,
        "notes": (
            "reference_per_sec re-measures the frozen pre-optimization "
            "implementations in-process; speedups are machine-independent. "
            "See PERFORMANCE.md."
        ),
    }


def _repo_root() -> pathlib.Path:
    for base in [pathlib.Path.cwd()] + list(pathlib.Path.cwd().parents):
        if (base / "pyproject.toml").exists():
            return base
    return pathlib.Path.cwd()


# The batched calendar queue must hold at least this much ahead of the
# frozen plain-heap reference on the same-tick burst bench.
BURST_MIN_SPEEDUP = 2.0
# The parallel sweep must hold this much ahead of serial — but only on
# machines with enough cores to physically show it.
PARALLEL_MIN_SPEEDUP = 2.0
PARALLEL_GATE_MIN_CORES = 4
# An uninstalled metrics pipeline (global load + None check per op)
# must be at least this much faster than installed-and-scraping —
# i.e. disabled telemetry stays (nearly) free.
METRICS_DISABLED_MIN_SPEEDUP = 1.5
# Sleep-set pruning must keep exhaustive exploration of the mixed-
# dependency property config at or below this fraction of the naive
# interleaving count.
EXPLORE_MAX_RATIO = 0.25


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    min_speedup = 1.5
    if "--min-speedup" in argv:
        index = argv.index("--min-speedup")
        min_speedup = float(argv[index + 1])
        del argv[index : index + 2]
    jobs = 0
    if "--jobs" in argv:
        index = argv.index("--jobs")
        jobs = int(argv[index + 1])
        del argv[index : index + 2]
    out_path = _repo_root() / "BENCH_perf.json"
    if "--out" in argv:
        index = argv.index("--out")
        out_path = pathlib.Path(argv[index + 1])
        del argv[index : index + 2]
    if argv:
        raise SystemExit(f"unknown perf option(s): {' '.join(argv)}")

    report = run_perf(quick=quick, jobs=jobs)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    print(f"perf report -> {out_path}")
    for key in ("event_loop", "event_burst", "metered_access", "page_burst"):
        entry = report[key]
        rate = next(v for k, v in entry.items() if k.endswith("_per_sec"))
        print(f"  {key:16s} {rate:>12,}/s   {entry['speedup']:.2f}x vs pre-PR reference")
    tr = report["tracer_overhead"]
    print(
        f"  {'tracer':16s} off {tr['tracer_off_per_sec']:,}/s  "
        f"on {tr['tracer_on_per_sec']:,}/s  (+{tr['overhead_pct']}%)"
    )
    sp = report["spans_overhead"]
    print(
        f"  {'spans':16s} off {sp['spans_off_per_sec']:,}/s  "
        f"on {sp['spans_on_per_sec']:,}/s  (+{sp['overhead_pct']}%)  "
        f"disabled {sp['disabled_speedup']:.2f}x vs pre-PR reference"
    )
    msn = report["memsan_overhead"]
    print(
        f"  {'memsan':16s} off {msn['memsan_off_per_sec']:,}/s  "
        f"on {msn['memsan_on_per_sec']:,}/s  (+{msn['overhead_pct']}%)  "
        f"disabled {msn['disabled_speedup']:.2f}x vs pre-PR reference"
    )
    mt = report["metrics_overhead"]
    print(
        f"  {'metrics':16s} off {mt['metrics_off_per_sec']:,}/s  "
        f"on {mt['metrics_on_per_sec']:,}/s  (+{mt['overhead_pct']}%)  "
        f"disabled {mt['disabled_speedup']:.2f}x vs installed-and-scraping"
    )
    sw = report["sweep_parallel"]
    print(
        f"  {'sweep parallel':16s} serial {sw['serial_s']}s  "
        f"jobs={sw['jobs']} {sw['parallel_s']}s  ({sw['speedup']:.2f}x on "
        f"{sw['cpu_count']} core(s), merged_identical={sw['merged_identical']})"
    )
    fig7 = report["fig7_slice"]
    print(
        f"  {'fig7 slice':16s} {fig7['wall_s']}s wall, qps={fig7['qps']}, "
        f"{fig7['events_scheduled']} events "
        f"({fig7['events_per_wall_second']:,}/wall-s)"
    )
    ex = report["explore"]
    print(
        f"  {'explore':16s} toy {ex['toy_schedules']}/{ex['toy_naive']} "
        f"(ratio {ex['toy_ratio']}), protocol "
        f"{ex['protocol_schedules']}/{ex['protocol_naive']} "
        f"(ratio {ex['protocol_ratio']}), "
        f"{ex['schedules_per_sec']} schedules/s, clean={ex['clean']}"
    )

    burst = report["event_burst"]["speedup"]
    if burst < BURST_MIN_SPEEDUP:
        print(
            f"FAIL: event-burst speedup {burst:.2f}x is below the "
            f"{BURST_MIN_SPEEDUP:.2f}x gate — the batched calendar queue "
            f"lost its edge over the plain-heap reference (see "
            f"PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: event-burst speedup {burst:.2f}x >= "
        f"{BURST_MIN_SPEEDUP:.2f}x gate"
    )
    if not sw["merged_identical"]:
        print(
            "FAIL: parallel sweep merged report differs from serial — "
            "determinism broke (see tests/parallel/test_differential.py)",
            file=sys.stderr,
        )
        return 1
    print("OK: parallel sweep merge is byte-identical to serial")
    if sw["cpu_count"] >= PARALLEL_GATE_MIN_CORES and sw["jobs"] >= PARALLEL_GATE_MIN_CORES:
        if sw["speedup"] < PARALLEL_MIN_SPEEDUP:
            print(
                f"FAIL: parallel sweep speedup {sw['speedup']:.2f}x with "
                f"jobs={sw['jobs']} on {sw['cpu_count']} cores is below the "
                f"{PARALLEL_MIN_SPEEDUP:.2f}x gate (see PERFORMANCE.md)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: parallel sweep speedup {sw['speedup']:.2f}x >= "
            f"{PARALLEL_MIN_SPEEDUP:.2f}x gate"
        )
    else:
        print(
            f"SKIP: parallel-sweep speedup gate needs >= "
            f"{PARALLEL_GATE_MIN_CORES} cores and jobs (have "
            f"{sw['cpu_count']} core(s), jobs={sw['jobs']}); ratio "
            f"{sw['speedup']:.2f}x recorded"
        )

    speedup = report["metered_access"]["speedup"]
    if speedup < min_speedup:
        print(
            f"FAIL: metered-access speedup {speedup:.2f}x is below the "
            f"{min_speedup:.2f}x gate (see PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: metered-access speedup {speedup:.2f}x >= {min_speedup:.2f}x gate")
    disabled = report["spans_overhead"]["disabled_speedup"]
    if disabled < min_speedup:
        print(
            f"FAIL: spans-disabled metered access {disabled:.2f}x is below "
            f"the {min_speedup:.2f}x gate — the span hooks cost too much "
            f"when no SpanTracer is installed (see PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: spans-disabled metered access {disabled:.2f}x >= "
        f"{min_speedup:.2f}x gate"
    )
    memsan_disabled = report["memsan_overhead"]["disabled_speedup"]
    if memsan_disabled < min_speedup:
        print(
            f"FAIL: memsan-disabled metered access {memsan_disabled:.2f}x is "
            f"below the {min_speedup:.2f}x gate — the race-detector hooks "
            f"cost too much when no MemSan is installed (see PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: memsan-disabled metered access {memsan_disabled:.2f}x >= "
        f"{min_speedup:.2f}x gate"
    )
    metrics_disabled = report["metrics_overhead"]["disabled_speedup"]
    if metrics_disabled < METRICS_DISABLED_MIN_SPEEDUP:
        print(
            f"FAIL: metrics-disabled ops {metrics_disabled:.2f}x is below "
            f"the {METRICS_DISABLED_MIN_SPEEDUP:.2f}x gate — the uninstalled "
            f"pipeline check costs too much relative to live scraping "
            f"(see PERFORMANCE.md)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: metrics-disabled ops {metrics_disabled:.2f}x >= "
        f"{METRICS_DISABLED_MIN_SPEEDUP:.2f}x gate"
    )
    ex = report["explore"]
    if not ex["clean"]:
        print(
            "FAIL: schedule exploration reported protocol violations — "
            "run `python -m repro.analysis explore` for replay tokens",
            file=sys.stderr,
        )
        return 1
    if ex["toy_ratio"] > EXPLORE_MAX_RATIO:
        print(
            f"FAIL: explore pruning ratio {ex['toy_ratio']} exceeds the "
            f"{EXPLORE_MAX_RATIO} gate — happens-before pruning lost its "
            f"edge over naive enumeration (see DESIGN.md §14)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: explore pruning ratio {ex['toy_ratio']} <= "
        f"{EXPLORE_MAX_RATIO} gate ({ex['schedules_per_sec']} schedules/s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

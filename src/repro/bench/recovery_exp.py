"""Figure 10: crash-recovery timelines for the three schemes.

Each run drives one instance through three acts on the simulation
clock: (1) steady-state workload, (2) a process kill plus the scheme's
recovery (PolarRecv / RDMA-assisted replay / vanilla replay), whose
metered cost elapses as simulated downtime, (3) the workload again,
where the buffer pool's warmth decides how fast throughput returns.
The per-bucket query-completion series is the figure's curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..baselines.rdma_bufferpool import TieredRdmaBufferPool
from ..baselines.rdma_recovery import rdma_assisted_recovery
from ..baselines.vanilla_recovery import ReplayStats, replay_recovery
from ..core.recovery import PolarRecv, RecoveryStats
from ..db.bufferpool import LocalBufferPool
from ..db.constants import PAGE_SIZE
from ..db.engine import Engine
from ..hardware.cache import LineCacheModel
from ..hardware.memory import WindowedMemory
from ..obs.metrics import suspended as metrics_suspended
from ..sim.settle import ChargeSettler
from ..sim.stats import TimeSeries
from ..workloads.driver import InstanceCtx, PoolingDriver
from ..workloads.sysbench import SysbenchWorkload
from .harness import build_pooling_setup

__all__ = ["RecoveryTimeline", "run_recovery_experiment", "RECOVERY_SCHEMES"]

RECOVERY_SCHEMES = {
    "polarrecv": "cxl",
    "rdma": "rdma",
    "vanilla": "dram",
}


@dataclass
class RecoveryTimeline:
    """One scheme's crash-recovery timeline."""

    scheme: str
    mix: str
    series: list[tuple[float, float]]  # (seconds, QPS)
    crash_time_s: float
    recovery_seconds: float
    pre_crash_qps: float
    warmup_seconds: float  # time after recovery to reach 90% of pre-crash QPS
    detail: object = None  # RecoveryStats or ReplayStats

    @property
    def downtime_plus_warmup_seconds(self) -> float:
        return self.recovery_seconds + self.warmup_seconds


def run_recovery_experiment(
    scheme: str,
    mix: str = "read_write",
    rows: int = 24_000,
    workers: int = 8,
    phase1_txns: int = 3,
    phase2_txns: int = 24,
    bucket_ms: int = 5,
    seed: int = 7,
) -> RecoveryTimeline:
    """Run one scheme × workload crash-recovery timeline.

    Runs with any installed metrics pipeline suspended: this experiment
    owns a private simulator, and publishing its clock into a pipeline
    anchored to a caller's simulation (the join-leave scenario's
    baselines) would interleave two timelines in one series.
    """
    with metrics_suspended():
        return _run_recovery_experiment(
            scheme, mix, rows, workers, phase1_txns, phase2_txns, bucket_ms, seed
        )


def _run_recovery_experiment(
    scheme: str,
    mix: str,
    rows: int,
    workers: int,
    phase1_txns: int,
    phase2_txns: int,
    bucket_ms: int,
    seed: int,
) -> RecoveryTimeline:
    if scheme not in RECOVERY_SCHEMES:
        raise ValueError(f"unknown recovery scheme {scheme!r}")
    system = RECOVERY_SCHEMES[scheme]
    workload = SysbenchWorkload(rows=rows)
    setup = build_pooling_setup(system, 1, workload, seed=seed)
    sim = setup.sim
    ictx = setup.instances[0]
    timeline = TimeSeries(bucket_ms * 1_000_000)

    # Act 1: steady state.
    driver1 = PoolingDriver(
        sim,
        [ictx],
        workload.txn_fn(mix),
        workers_per_instance=workers,
        warmup_txns=1,
        measure_txns=phase1_txns,
        timeline=timeline,
    )
    res1 = driver1.run()
    pre_crash_qps = res1.qps
    crash_ns = sim.now

    # Act 2: crash + recovery.
    engine = ictx.engine
    n_blocks = getattr(engine.buffer_pool, "n_blocks", 0)
    engine.crash()
    meter = engine.meter
    meter.reset()
    store, redo = engine.page_store, engine.redo_log
    host = setup.host
    line_cache = LineCacheModel(
        capacity_bytes=max(1 << 15, len(store) * PAGE_SIZE // 32)
    )
    detail: object

    if scheme == "polarrecv":
        assert setup.manager is not None
        extent = setup.extents[0]
        mapped = host.map_cxl(setup.manager.region, meter, line_cache)
        mem = WindowedMemory(mapped, extent.offset, extent.size)
        pool, detail = PolarRecv(mem, store, redo, n_blocks).recover()
    elif scheme == "rdma":
        remote = setup.remotes[0]
        lbp_pages = engine.buffer_pool.local_capacity_pages
        region = host.alloc_dram("recovered.lbp", lbp_pages * PAGE_SIZE)
        pool = TieredRdmaBufferPool(
            host.map_dram(region, meter, line_cache),
            remote,
            store,
            lbp_pages,
            meter,
        )
        redo.attach_meter(meter)
        detail = rdma_assisted_recovery(pool, store, redo, remote, meter)
    else:  # vanilla
        capacity = len(store) + 48
        region = host.alloc_dram("recovered.bp", capacity * PAGE_SIZE)
        pool = LocalBufferPool(
            host.map_dram(region, meter, line_cache), store, capacity
        )
        redo.attach_meter(meter)
        detail = replay_recovery(pool, store, redo)

    # The recovery work elapses as simulated downtime — serially, the
    # way a replay actually reads pages.
    settler = ChargeSettler(sim, meter, host.pipes)
    sim.run_process(settler.settle_serial())
    recovery_seconds = (sim.now - crash_ns) / 1e9

    engine2 = Engine(
        engine.name,
        pool,
        store,
        redo,
        meter,
        cost=engine.cost,
    )
    engine2.adopt_schema(workload.schema())
    ictx2 = InstanceCtx(engine=engine2, host=host, rng=ictx.rng.fork(99))

    # Act 3: back in business; warmth decides the ramp.
    driver2 = PoolingDriver(
        sim,
        [ictx2],
        workload.txn_fn(mix),
        workers_per_instance=workers,
        warmup_txns=0,
        measure_txns=phase2_txns,
        timeline=timeline,
    )
    driver2.run()

    series = timeline.series(until_ns=sim.now)
    warmup_seconds = _warmup_time(
        series, (crash_ns / 1e9) + recovery_seconds, pre_crash_qps
    )
    return RecoveryTimeline(
        scheme=scheme,
        mix=mix,
        series=series,
        crash_time_s=crash_ns / 1e9,
        recovery_seconds=recovery_seconds,
        pre_crash_qps=pre_crash_qps,
        warmup_seconds=warmup_seconds,
        detail=detail,
    )


def _warmup_time(
    series: list[tuple[float, float]], restart_s: float, target_qps: float
) -> float:
    """Seconds after restart until throughput reaches 90% of pre-crash.

    The per-bucket series aliases against the transaction period, so the
    detector compares a 4-bucket moving average against the threshold.
    """
    threshold = 0.9 * target_qps
    window = 4
    candidates = [(t, qps) for t, qps in series if t >= restart_s]
    for i in range(len(candidates)):
        chunk = candidates[i : i + window]
        if not chunk:
            break
        avg = sum(q for _, q in chunk) / len(chunk)
        if avg >= threshold:
            return max(0.0, candidates[i][0] - restart_s)
    if candidates:
        return max(0.0, candidates[-1][0] - restart_s)
    return 0.0

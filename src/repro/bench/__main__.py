"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench list          # show available experiments
    python -m repro.bench table1 fig7   # run selected experiments
    python -m repro.bench all           # run everything

Each experiment is a pytest-benchmark test under ``benchmarks/``; this
command locates the repository's ``benchmarks/`` directory and runs the
matching files with output enabled. Reports also land in
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

EXPERIMENTS = {
    "table1": "test_table1_latency.py",
    "table2": "test_table2_transfer.py",
    "fig1": "test_fig1_lbp_sweep.py",
    "fig3": "test_fig3_cxl_vs_dram.py",
    "fig7": "test_fig7_pooling_point_select.py",
    "fig8": "test_fig8_pooling_range_select.py",
    "fig9": "test_fig9_pooling_read_write.py",
    "fig10": "test_fig10_recovery.py",
    "fig11": "test_fig11_sharing_point_update.py",
    "fig12": "test_fig12_sharing_read_write.py",
    "fig13": "test_fig13_breakdown.py",
    "fig_scale": "test_fig_scale.py",
    "table3": "test_table3_tpcc_tatp.py",
    "ablations": "test_ablations.py",
    "counters": "test_counters_amplification.py",
    "spans": "test_spans_breakdown.py",
    "memsan": "test_memsan_fig13.py",
    "ha": "test_ha_scenarios.py",
}


def _benchmarks_dir() -> pathlib.Path:
    """Find benchmarks/ next to the repository's pyproject.toml."""
    for base in [pathlib.Path.cwd()] + list(pathlib.Path.cwd().parents):
        candidate = base / "benchmarks"
        if (base / "pyproject.toml").exists() and candidate.is_dir():
            return candidate
    # Fallback: relative to the installed source tree (editable install).
    here = pathlib.Path(__file__).resolve()
    for base in here.parents:
        candidate = base / "benchmarks"
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "could not locate the benchmarks/ directory; run from the repo root"
    )


def main(argv: list[str]) -> int:
    # "perf" is not a pytest-benchmark experiment but the wall-clock
    # perf-regression harness; it takes its own options (see bench/perf.py).
    if argv and argv[0] == "perf":
        from .perf import main as perf_main

        return perf_main(argv[1:])
    # --counters: also run the mechanism-counter export (trace-verified
    # bytes-moved amplification) alongside whatever was selected.
    with_counters = "--counters" in argv
    argv = [arg for arg in argv if arg != "--counters"]
    # --spans: install a SpanTracer inside the benchmark process (via
    # REPRO_BENCH_SPANS, consumed by benchmarks/conftest.py) so every
    # selected experiment also prints its span-derived latency breakdown.
    with_spans = "--spans" in argv
    argv = [arg for arg in argv if arg != "--spans"]
    # --memsan: install the CXL-MemSan race detector inside the
    # benchmark process (via REPRO_BENCH_MEMSAN, consumed by
    # benchmarks/conftest.py); any race report fails the run.
    with_memsan = "--memsan" in argv
    argv = [arg for arg in argv if arg != "--memsan"]
    # --ha: also run the fleet HA scenarios (availability timelines and
    # the warm-attach vs recovery comparison) alongside the selection.
    with_ha = "--ha" in argv
    argv = [arg for arg in argv if arg != "--ha"]
    # --metrics: install a live MetricsPipeline inside the benchmark
    # process (via REPRO_BENCH_METRICS, consumed by
    # benchmarks/conftest.py and per-point harnesses); experiments emit
    # canonical JSON metric timelines plus ASCII sparkline dashboards.
    with_metrics = "--metrics" in argv
    argv = [arg for arg in argv if arg != "--metrics"]
    # --jobs N: shard the selected experiment files across N concurrent
    # pytest processes (0 = one per core). Each experiment file is
    # self-contained, so file-level sharding preserves every number;
    # outputs are buffered and printed per shard to stay readable.
    jobs = 1
    if "--jobs" in argv:
        index = argv.index("--jobs")
        jobs = int(argv[index + 1])
        del argv[index : index + 2]
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if not argv and with_ha:
        argv = ["ha"]
    if not argv and with_counters:
        argv = ["counters"]
    if not argv and with_spans:
        argv = ["spans"]
    if not argv and with_memsan:
        argv = ["memsan"]
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("experiments:")
        for name, filename in EXPERIMENTS.items():
            print(f"  {name:10s} benchmarks/{filename}")
        print(f"  {'perf':10s} wall-clock perf harness -> BENCH_perf.json")
        print("\nusage: python -m repro.bench [--counters] [--spans] [--memsan] [--ha] [--metrics] [--jobs N] <experiment>... | all")
        print("       python -m repro.bench perf [--quick] [--min-speedup X] [--jobs N] [--out PATH]")
        return 0
    names = list(EXPERIMENTS) if argv == ["all"] else argv
    if with_counters and "counters" not in names:
        names.append("counters")
    if with_spans and "spans" not in names:
        names.append("spans")
    if with_memsan and "memsan" not in names:
        names.append("memsan")
    if with_ha and "ha" not in names:
        names.append("ha")
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
    bench_dir = _benchmarks_dir()
    files = [str(bench_dir / EXPERIMENTS[name]) for name in names]
    env = dict(os.environ)
    if with_spans or "spans" in names:
        env["REPRO_BENCH_SPANS"] = "1"
    if with_memsan or "memsan" in names:
        env["REPRO_BENCH_MEMSAN"] = "1"
    if with_metrics:
        env["REPRO_BENCH_METRICS"] = "1"
    # fig_scale parallelizes *within* its file (one work unit per scale
    # point); hand it the --jobs value since file-level sharding cannot
    # split a single experiment.
    env["REPRO_BENCH_JOBS"] = str(jobs)

    def pytest_command(selected: list[str]) -> list[str]:
        return [
            sys.executable,
            "-m",
            "pytest",
            *selected,
            "--benchmark-only",
            "-q",
            "-s",
        ]

    if jobs > 1 and len(files) > 1:
        import tempfile

        shards = [files[i::jobs] for i in range(jobs) if files[i::jobs]]
        procs = []
        for shard in shards:
            handle = tempfile.TemporaryFile("w+")
            procs.append(
                (
                    subprocess.Popen(
                        pytest_command(shard),
                        env=env,
                        stdout=handle,
                        stderr=subprocess.STDOUT,
                    ),
                    handle,
                )
            )
        code = 0
        for proc, handle in procs:
            code = max(code, proc.wait())
            handle.seek(0)
            sys.stdout.write(handle.read())
            handle.close()
        return code
    return subprocess.call(pytest_command(files), env=env)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

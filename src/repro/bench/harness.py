"""Experiment harness: build complete systems for each configuration.

Builders assemble the full stack — cluster, hosts, pipes, memory
manager, buffer pool, engine, loaded dataset — for each of the paper's
three system kinds:

* ``dram`` — plain local buffer pool (DRAM-BP in Fig. 3),
* ``cxl``  — PolarCXLMem (no local buffer, everything in CXL),
* ``rdma`` — tiered LBP + remote memory over RDMA.

and for the two multi-primary sharing systems (``cxl`` / ``rdma``).
Setup costs (loading, pool formatting) are wiped from the meters so runs
measure steady state only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.memsan import active as memsan_active
from ..baselines.rdma_bufferpool import RemoteMemoryNode, TieredRdmaBufferPool
from ..baselines.rdma_sharing import RdmaDbpServer, RdmaSharedBufferPool
from ..core.coherency import FLAG_BYTES_PER_ENTRY, FlagSlab
from ..core.cxl_bufferpool import CxlBufferPool
from ..core.fusion import BufferFusionServer, PageLockService
from ..core.memmgr import CxlMemoryManager
from ..core.shard_router import FusionShardRouter
from ..core.hw_coherent import HwCoherentSharedPool
from ..core.sharing import MultiPrimaryNode, SharedCxlBufferPool
from ..core.block import pool_bytes_needed
from ..db.bufferpool import LocalBufferPool
from ..db.constants import PAGE_SIZE
from ..db.engine import Engine
from ..faults.injector import crash_point
from ..hardware.cache import CpuCache, LineCacheModel
from ..hardware.host import Cluster, Host
from ..hardware.memory import AccessMeter, WindowedMemory
from ..sim.core import Simulator
from ..sim.latency import CostModel, LatencyConfig
from ..sim.rng import WorkloadRng
from ..sim.settle import ChargeSettler
from ..storage.pagestore import PageStore
from ..storage.wal import RedoLog
from ..workloads.base import Workload
from ..workloads.driver import InstanceCtx

__all__ = [
    "PoolingSetup",
    "build_pooling_setup",
    "SharingSetup",
    "build_sharing_setup",
    "add_sharing_node",
    "counter_snapshot",
    "register_metric_sources",
    "reset_meters",
    "SYSTEMS",
]

SYSTEMS = ("dram", "cxl", "rdma")

_POOL_SLACK_PAGES = 48
_LBP_MIN_PAGES = 8


def _preload_remote(remote: RemoteMemoryNode, store: PageStore) -> None:
    """Populate remote memory with the whole dataset (paper §4.1: the
    disaggregated memory is sized to hold the entire dataset)."""
    for page_id in sorted(store.page_ids()):
        slot = remote._claim_slot()
        remote._slot_of[page_id] = slot
        remote.region.write(slot * PAGE_SIZE, store.read_page_unmetered(page_id))


@dataclass
class PoolingSetup:
    """Everything needed to run pooling experiments on one host."""

    sim: Simulator
    cluster: Cluster
    host: Host
    instances: list[InstanceCtx]
    system: str
    workload: Workload
    config: LatencyConfig
    cost: CostModel
    manager: Optional[CxlMemoryManager] = None
    remotes: list[RemoteMemoryNode] = field(default_factory=list)
    extents: list = field(default_factory=list)


def build_pooling_setup(
    system: str,
    n_instances: int,
    workload: Workload,
    lbp_fraction: float = 0.3,
    seed: int = 7,
    config: Optional[LatencyConfig] = None,
    cost: Optional[CostModel] = None,
    lru_move_period: int = 8,
) -> PoolingSetup:
    """Build ``n_instances`` independent database instances on one host.

    Each instance owns its dataset (as in the paper's multi-instance
    cloud host); they share the host's NIC / CXL link / WAL / client
    pipes, which is where scalability limits come from.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}")
    config = config or LatencyConfig()
    cost = cost or CostModel(latency=config)
    sim = Simulator()
    cluster = Cluster(sim, config=config)
    host = cluster.add_host("host0")
    setup = PoolingSetup(
        sim, cluster, host, [], system, workload, config, cost
    )

    # Size the CXL pool for every instance up front (one mapped region).
    if system == "cxl":
        # Rough page count per instance: rows / min-leaf-fill plus slack.
        probe = _load_one(system="probe", host=host, workload=workload, seed=seed)
        pages_per_instance = probe + _POOL_SLACK_PAGES
        extent_bytes = pool_bytes_needed(pages_per_instance)
        setup.manager = CxlMemoryManager(
            cluster.fabric,
            extent_bytes * n_instances + (4 << 21),
            config=config,
        )
    else:
        pages_per_instance = 0

    for index in range(n_instances):
        setup.instances.append(
            _build_instance(
                setup,
                index,
                seed=seed,
                lbp_fraction=lbp_fraction,
                pages_per_instance=pages_per_instance,
                lru_move_period=lru_move_period,
            )
        )
    reset_meters(setup.instances)
    return setup


def _load_one(system: str, host: Host, workload: Workload, seed: int) -> int:
    """Load the dataset once on a scratch engine; returns the page count."""
    meter = AccessMeter()
    store = PageStore(PAGE_SIZE, meter)
    redo = RedoLog(meter)
    region = host.alloc_dram("probe", 4096 * PAGE_SIZE)
    pool = LocalBufferPool(
        host.map_dram(region, meter, LineCacheModel()), store, 4096
    )
    engine = Engine("probe", pool, store, redo, meter)
    engine.initialize()
    workload.load(engine, WorkloadRng(seed))
    host.dram_regions.remove(region)
    return len(store)


def _build_instance(
    setup: PoolingSetup,
    index: int,
    seed: int,
    lbp_fraction: float,
    pages_per_instance: int,
    lru_move_period: int,
) -> InstanceCtx:
    sim, host, workload = setup.sim, setup.host, setup.workload
    config, cost = setup.config, setup.cost
    name = f"{setup.system}{index}"
    meter = AccessMeter()
    store = PageStore(PAGE_SIZE, meter, config=config)
    redo = RedoLog(meter, config=config)
    rng = WorkloadRng(seed + index * 7919)

    # Load via a roomy local pool, checkpoint, then attach the real pool.
    load_region = host.alloc_dram(f"{name}.load", 4096 * PAGE_SIZE)
    load_pool = LocalBufferPool(
        host.map_dram(load_region, meter, LineCacheModel()), store, 4096
    )
    loader = Engine(name, load_pool, store, redo, meter, cost=cost)
    loader.initialize()
    workload.load(loader, rng.fork(0))
    n_pages = len(store)
    host.dram_regions.remove(load_region)

    # The instance's LLC share is small relative to any real working set
    # (a 16 MB slice against hundreds of GB); scale the timing cache so
    # hot B-tree internals stay resident but the leaf level does not.
    line_cache = LineCacheModel(
        capacity_bytes=max(1 << 15, n_pages * PAGE_SIZE // 32)
    )

    if setup.system == "dram":
        capacity = n_pages + _POOL_SLACK_PAGES
        region = host.alloc_dram(f"{name}.bp", capacity * PAGE_SIZE)
        pool = LocalBufferPool(
            host.map_dram(region, meter, line_cache), store, capacity
        )
        volatile = [region]
    elif setup.system == "cxl":
        assert setup.manager is not None
        extent = setup.manager.allocate(
            name, pool_bytes_needed(pages_per_instance), meter
        )
        setup.extents.append(extent)
        mapped = host.map_cxl(setup.manager.region, meter, line_cache)
        mem = WindowedMemory(mapped, extent.offset, extent.size)
        pool = CxlBufferPool(
            mem, store, pages_per_instance, lru_move_period=lru_move_period
        )
        volatile = []
    else:  # rdma
        remote_region = setup.cluster.alloc_remote_memory(
            f"{name}.remote", (n_pages + _POOL_SLACK_PAGES) * PAGE_SIZE
        )
        remote = RemoteMemoryNode(
            remote_region, n_pages + _POOL_SLACK_PAGES, config=config
        )
        _preload_remote(remote, store)
        setup.remotes.append(remote)
        lbp_pages = max(_LBP_MIN_PAGES, int(n_pages * lbp_fraction))
        region = host.alloc_dram(f"{name}.lbp", lbp_pages * PAGE_SIZE)
        pool = TieredRdmaBufferPool(
            host.map_dram(region, meter, line_cache),
            remote,
            store,
            lbp_pages,
            meter,
        )
        volatile = [region]

    engine = Engine(
        name, pool, store, redo, meter, cost=cost, volatile_regions=volatile
    )
    engine.adopt_schema(workload.schema())
    _prewarm(pool, store)
    return InstanceCtx(engine=engine, host=host, rng=rng.fork(1))


def _prewarm(pool, store: PageStore) -> None:
    """Touch every page once so runs start from a warm pool.

    Tiered pools end up with their most-recently-touched LBP fraction
    resident, exactly the steady state a long-running instance reaches.
    Charges are wiped by :func:`reset_meters` afterwards.
    """
    for page_id in sorted(store.page_ids()):
        pool.get_page(page_id)
        pool.unpin(page_id)


def reset_meters(instances) -> None:
    """Wipe setup costs so a run measures steady state."""
    for ictx in instances:
        ictx.engine.meter.reset()


# ---------------------------------------------------------------------------
# Multi-primary sharing
# ---------------------------------------------------------------------------


@dataclass
class SharingSetup:
    """N multi-primary nodes over one shared dataset."""

    sim: Simulator
    cluster: Cluster
    nodes: list[MultiPrimaryNode]
    hosts: list[Host]
    system: str
    workload: Workload
    config: LatencyConfig
    cost: CostModel
    lock_service: PageLockService
    page_store: PageStore
    # Single server (n_shards == 1) or a FusionShardRouter over
    # fusion_shards — both duck-type the same RPC surface.
    fusion: Optional[BufferFusionServer | FusionShardRouter] = None
    fusion_shards: list = field(default_factory=list)
    n_shards: int = 1
    dbp_server: Optional[RdmaDbpServer] = None
    dbp_host: Optional[Host] = None
    manager: Optional[CxlMemoryManager] = None
    # Build parameters retained so nodes can be added after the fact
    # (fleet HA join/leave — see add_sharing_node).
    n_pages: int = 0
    n_flag_entries: int = 0
    base_lsn: int = 0
    schema: list = field(default_factory=list)

    def total_memory_bytes(self) -> int:
        """Memory footprint: DBP plus any per-node local buffers."""
        dbp = len(self.page_store) * PAGE_SIZE
        local = 0
        for node in self.nodes:
            pool = node.engine.buffer_pool
            local += getattr(pool, "local_capacity_pages", 0) * PAGE_SIZE
        return dbp + local


def build_sharing_setup(
    system: str,
    n_nodes: int,
    workload: Workload,
    lbp_fraction: float = 0.3,
    seed: int = 7,
    config: Optional[LatencyConfig] = None,
    cost: Optional[CostModel] = None,
    lbp_min_pages: int = _LBP_MIN_PAGES,
    n_shards: int = 1,
    loader_pool_pages: int = 16384,
) -> SharingSetup:
    """Build a multi-primary cluster over one shared dataset.

    ``system`` is ``"cxl"`` (the paper's CXL 2.0 software coherency),
    ``"rdma"`` (the PolarDB-MP baseline), or ``"cxl3"`` (modeled CXL 3.0
    hardware coherency — the paper's forward-looking case, used by the
    protocol-overhead ablation).

    ``n_shards > 1`` (``"cxl"`` only) shards the DBP metadata across
    that many fusion servers by hash of page id and installs a
    :class:`~repro.core.shard_router.FusionShardRouter` as
    ``setup.fusion`` — the node stack is identical either way.

    ``loader_pool_pages`` sizes the throwaway load-time buffer pool.
    The default comfortably holds every benchmark dataset; callers that
    rebuild many tiny clusters (the schedule explorer re-runs one build
    per explored interleaving) shrink it so construction is not
    dominated by zeroing an oversized loader region.
    """
    if system not in ("cxl", "rdma", "cxl3"):
        raise ValueError(f"unknown sharing system {system!r}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > 1 and system != "cxl":
        raise ValueError(
            "a sharded fusion tier requires the 'cxl' sharing system "
            f"(got {system!r}: rdma has its own DBP server, cxl3 assumes "
            "one hardware-coherent fusion region)"
        )
    config = config or LatencyConfig()
    cost = cost or CostModel(latency=config)
    sim = Simulator()
    # Port budget: 8 memory devices + loader (+ dbp-server for rdma) +
    # one link per node, with headroom for HA joins after the build.
    # Fleets beyond ~20 nodes need a wider switch than the 32-port
    # default; capacity is unchanged (see CxlFabric.max_ports).
    cluster = Cluster(sim, config=config, switch_ports=max(32, n_nodes + 16))

    # Load the dataset once; durable storage is the common substrate.
    loader_host = cluster.add_host("loader", with_rdma=False)
    loader_meter = AccessMeter()
    store = PageStore(PAGE_SIZE, loader_meter, config=config)
    loader_log = RedoLog(loader_meter, config=config)
    load_region = loader_host.alloc_dram("load", loader_pool_pages * PAGE_SIZE)
    load_pool = LocalBufferPool(
        loader_host.map_dram(load_region, loader_meter, LineCacheModel()),
        store,
        loader_pool_pages,
    )
    loader = Engine("loader", load_pool, store, loader_log, loader_meter, cost=cost)
    loader.initialize()
    workload.load(loader, WorkloadRng(seed))
    n_pages = len(store)
    loader_host.dram_regions.remove(load_region)

    lock_service = PageLockService(sim, config=config)
    schema = workload.schema()
    setup = SharingSetup(
        sim,
        cluster,
        [],
        [],
        system,
        workload,
        config,
        cost,
        lock_service,
        store,
    )

    dbp_slots = n_pages + _POOL_SLACK_PAGES
    n_flag_entries = dbp_slots
    setup.n_pages = n_pages
    setup.n_flag_entries = n_flag_entries
    setup.base_lsn = loader_log.next_lsn
    setup.schema = schema
    setup.n_shards = n_shards

    if system in ("cxl", "cxl3"):
        # Per-shard slot budget: an even split of the dataset plus slack
        # per shard, since the page-id hash never balances perfectly.
        shard_slots = (
            dbp_slots if n_shards == 1 else dbp_slots // n_shards + _POOL_SLACK_PAGES
        )
        manager = CxlMemoryManager(
            cluster.fabric,
            n_shards * shard_slots * PAGE_SIZE
            + (n_nodes + 1) * ((n_flag_entries * FLAG_BYTES_PER_ENTRY) + (2 << 21)),
            config=config,
        )
        setup.manager = manager
        if n_shards == 1:
            fusion_extent = manager.allocate("fusion", shard_slots * PAGE_SIZE)
            fusion = BufferFusionServer(
                manager.region, fusion_extent.offset, shard_slots, store, config=config
            )
            setup.fusion = fusion
            setup.fusion_shards = [fusion]
        else:
            for index in range(n_shards):
                extent = manager.allocate(
                    f"fusion/{index}", shard_slots * PAGE_SIZE
                )
                setup.fusion_shards.append(
                    BufferFusionServer(
                        manager.region,
                        extent.offset,
                        shard_slots,
                        store,
                        config=config,
                        service=f"fusion/{index}",
                    )
                )
            setup.fusion = FusionShardRouter(setup.fusion_shards)
    else:
        dbp_region = cluster.alloc_remote_memory("dbp", dbp_slots * PAGE_SIZE)
        setup.dbp_server = RdmaDbpServer(dbp_region, dbp_slots, store, config=config)
        # The memory node's own NIC carries every node's page traffic —
        # a shared bottleneck the CXL fabric does not have.
        dbp_host = cluster.add_host("dbp-server")
        setup.dbp_host = dbp_host

    for i in range(n_nodes):
        if system == "cxl":
            add_sharing_node(setup, f"node{i}")
            continue
        host = cluster.add_host(f"node{i}")
        meter = AccessMeter()
        redo = RedoLog(meter, config=config)
        # Page LSNs in the loaded dataset come from the loader's log;
        # node LSNs must sort after them or LSN-guarded redo (failover
        # page rebuild) would skip the node's own durable records.
        redo.align_lsn(loader_log.next_lsn)
        node_store = PageStore(PAGE_SIZE, meter, config=config)
        node_store._pages = store._pages  # shared durable storage
        if system == "cxl3":
            assert setup.manager is not None and setup.fusion is not None
            hw_line_cache = LineCacheModel(
                capacity_bytes=max(1 << 16, n_pages * PAGE_SIZE // 10)
            )
            host.register_cache(hw_line_cache)
            pool = HwCoherentSharedPool(
                f"node{i}",
                setup.fusion,
                setup.manager.region,
                meter,
                config=config,
                line_cache=hw_line_cache,
            )
        else:
            assert setup.dbp_server is not None
            # Paper §4.4: the LBP is sized as a fraction of each node's
            # *accessed* dataset — the workload knows how much of the
            # database one node touches.
            accessed_pages = max(
                1, int(n_pages * workload.accessed_fraction(n_nodes))
            )
            lbp_pages = max(lbp_min_pages, int(accessed_pages * lbp_fraction))
            region = host.alloc_dram(f"node{i}.lbp", lbp_pages * PAGE_SIZE)
            pool = RdmaSharedBufferPool(
                f"node{i}",
                setup.dbp_server,
                host.map_dram(region, meter, LineCacheModel()),
                lbp_pages,
                meter,
            )
        if system == "rdma" and setup.dbp_host is not None:
            # RDMA to the DBP traverses the node NIC *and* the memory
            # node's NIC; the latter is shared by every node.
            assert setup.dbp_host.nic is not None and host.nic is not None
            host.pipes["rdma"] = [host.nic.data_pipe, setup.dbp_host.nic.data_pipe]
            host.pipes["rdma_ops"] = [host.nic.ops_pipe, setup.dbp_host.nic.ops_pipe]
        engine = Engine(f"node{i}", pool, node_store, redo, meter, cost=cost)
        engine.adopt_schema(schema)
        settler = ChargeSettler(sim, meter, host.pipes)
        setup.nodes.append(
            MultiPrimaryNode(f"node{i}", engine, lock_service, settler)
        )
        setup.hosts.append(host)
    ms = memsan_active()
    if ms is not None:
        # A race detector installed before the build (``python -m
        # repro.bench --memsan``, or a test's MemSan) watches the shared
        # CXL region automatically; rdma/cxl3 need no region watch.
        ms.watch_setup(setup)
    return setup


def add_sharing_node(
    setup: SharingSetup,
    node_id: Optional[str] = None,
    reuse_slab: Optional[FlagSlab] = None,
    warm_join: bool = False,
) -> MultiPrimaryNode:
    """Attach one primary to a ``"cxl"`` sharing fleet.

    ``build_sharing_setup`` uses this for its initial nodes; the fleet
    HA scenarios (:mod:`repro.ha.scenarios`) call it *after* the build
    to model node join — a fresh primary attaching to the surviving CXL
    pool. The joiner inherits the warm DBP by construction: its first
    page access gets a CXL address from the fusion server, no storage
    reload, which is the PolarRecv warm-attach the join/leave scenario
    times against the ARIES/RDMA baselines.

    ``reuse_slab`` hands the new node a dead node's flag-slab extent
    (scrubbed via :meth:`~repro.core.coherency.FlagSlab.clear_all` and
    recharged to the new owner's meter) instead of allocating a fresh
    one — the rejoin path of rolling-crash scenarios, which must not
    leak CXL memory on every crash/rejoin cycle. ``warm_join=True``
    marks an attach to a *live* fleet and fires the registered
    ``sharing.join.warm`` crash point once the node is wired up.
    """
    if setup.system != "cxl":
        raise ValueError("add_sharing_node requires a 'cxl' sharing setup")
    assert setup.manager is not None and setup.fusion is not None
    config = setup.config
    if node_id is None:
        node_id = f"node{len(setup.nodes)}"
    host = setup.cluster.add_host(node_id)
    meter = AccessMeter()
    redo = RedoLog(meter, config=config)
    # Page LSNs in the loaded dataset come from the loader's log;
    # node LSNs must sort after them or LSN-guarded redo (failover
    # page rebuild) would skip the node's own durable records.
    redo.align_lsn(setup.base_lsn)
    node_store = PageStore(PAGE_SIZE, meter, config=config)
    node_store._pages = setup.page_store._pages  # shared durable storage
    ms = memsan_active()
    if reuse_slab is not None:
        slab = reuse_slab
        slab.meter = meter
        slab.clear_all()
    else:
        slab_extent = setup.manager.allocate(
            f"{node_id}.flags",
            setup.n_flag_entries * FLAG_BYTES_PER_ENTRY,
            meter,
        )
        if ms is not None:
            # The constructor zeroes the slab with one bulk region
            # write; under an active MemSan that bookkeeping store must
            # not register as an actor's data write.
            with ms.internal():
                slab = FlagSlab(
                    setup.manager.region,
                    slab_extent.offset,
                    setup.n_flag_entries,
                    meter,
                    config=config,
                )
        else:
            slab = FlagSlab(
                setup.manager.region,
                slab_extent.offset,
                setup.n_flag_entries,
                meter,
                config=config,
            )
    cpu_cache = CpuCache(
        f"{node_id}.cache",
        capacity_lines=max(1 << 10, setup.n_pages * PAGE_SIZE // 10 // 64),
        meter=meter,
        miss_ns=config.cxl_switch_local_ns,
        hit_ns=18.0,
        pipe_key="cxl",
    )
    # The functional cache is host SRAM: a node crash must drop
    # its dirty lines, never write them back.
    host.register_cache(cpu_cache)
    pool = SharedCxlBufferPool(
        node_id,
        setup.fusion,
        setup.manager.region,
        cpu_cache,
        slab,
        meter,
        config=config,
    )
    engine = Engine(node_id, pool, node_store, redo, meter, cost=setup.cost)
    engine.adopt_schema(setup.schema)
    settler = ChargeSettler(setup.sim, meter, host.pipes)
    node = MultiPrimaryNode(node_id, engine, lock_service=setup.lock_service, settler=settler)
    setup.nodes.append(node)
    setup.hosts.append(host)
    if warm_join:
        # Crash (of the joiner) here: it is registered with nothing yet
        # and holds no locks — the fleet just carries on without it.
        crash_point("sharing.join.warm")
    return node


# ---------------------------------------------------------------------------
# Counter export
# ---------------------------------------------------------------------------

_POOL_STAT_ATTRS = (
    "hits",
    "misses",
    "evictions",
    "remote_fetches",
    "storage_fetches",
    "refetches",
    "invalidations_observed",
    "removals_observed",
    "rpc_retries",
)

_BYTES_MOVED_PIPES = ("cxl", "rdma", "storage", "wal")


def counter_snapshot(setup, tracer=None) -> dict[str, float]:
    """Merge every mechanism counter of a finished run into one dict.

    Works on both :class:`PoolingSetup` and :class:`SharingSetup`.
    Sources, in order:

    * each engine's :class:`AccessMeter` counters (``meter.`` prefix),
    * per-pool stats attributes (``pool_stats.`` prefix, summed over
      instances/nodes),
    * fusion / DBP server stats when the setup has them,
    * ``bytes_moved.{pipe}`` roll-ups derived from the meters' per-pipe
      byte counts — the amplification numbers (rdma vs cxl traffic),
    * the tracer's :class:`~repro.obs.counters.CounterRegistry` snapshot
      (names used verbatim) when a tracer is passed or installed.
    """
    if tracer is None:
        from ..obs.trace import active as _obs_active

        tracer = _obs_active()
    snap: dict[str, float] = {}

    def add(key: str, amount: float) -> None:
        snap[key] = snap.get(key, 0.0) + amount

    contexts = getattr(setup, "instances", None)
    if contexts is not None:
        engines = [ictx.engine for ictx in contexts]
    else:
        engines = [node.engine for node in getattr(setup, "nodes", [])]
    for engine in engines:
        for key, value in engine.meter.counters.items():
            add(f"meter.{key}", value)
        pool = engine.buffer_pool
        for attr in _POOL_STAT_ATTRS:
            value = getattr(pool, attr, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                add(f"pool_stats.{attr}", value)

    fusion = getattr(setup, "fusion", None)
    if fusion is not None:
        add("fusion_stats.rpcs", fusion.rpcs)
        add("fusion_stats.pages_loaded", fusion.pages_loaded)
        add("fusion_stats.pages_recycled", fusion.pages_recycled)
        add("fusion_stats.invalidations_pushed", fusion.invalidations_pushed)
        add("fusion_stats.reshares", getattr(fusion, "reshares", 0))
    dbp_server = getattr(setup, "dbp_server", None)
    if dbp_server is not None:
        add("dbp_stats.rpcs", dbp_server.rpcs)
        add("dbp_stats.invalidation_messages", dbp_server.invalidation_messages)

    for pipe in _BYTES_MOVED_PIPES:
        moved = snap.get(f"meter.{pipe}_bytes")
        if moved is not None:
            add(f"bytes_moved.{pipe}", moved)
    add(
        "bytes_moved.interconnect",
        snap.get("bytes_moved.cxl", 0.0) + snap.get("bytes_moved.rdma", 0.0),
    )

    if tracer is not None:
        for name, value in tracer.counters.snapshot().items():
            add(name, value)
    return dict(sorted(snap.items()))


def register_metric_sources(setup, pipeline=None) -> int:
    """Wire a setup's cumulative mechanism counters into the metrics
    pipeline as windowed-rate counter sources.

    Covers the same surfaces as :func:`counter_snapshot`, but live: each
    scrape turns the cumulative totals into per-window deltas, labeled
    by node (engine meters) or shard (fusion servers, including their
    sharer-directory churn). No-op (returns 0) when no pipeline is
    installed; returns the number of sources registered otherwise.
    """
    if pipeline is None:
        from ..obs.metrics import active as _metrics_active

        pipeline = _metrics_active()
    if pipeline is None:
        return 0
    registered = 0
    contexts = getattr(setup, "instances", None)
    if contexts is not None:
        engines = [(f"inst{i}", ictx.engine) for i, ictx in enumerate(contexts)]
    else:
        engines = [
            (node.node_id, node.engine) for node in getattr(setup, "nodes", [])
        ]
    for name, engine in engines:
        pipeline.add_counter_source(
            "meter.", lambda m=engine.meter: m.counters, node=name
        )
        registered += 1

    fusion = getattr(setup, "fusion", None)
    if fusion is not None:
        shards = list(getattr(setup, "fusion_shards", [])) or [fusion]
        for index, shard in enumerate(shards):

            def snap(s=shard) -> dict[str, float]:
                stats = {
                    "rpcs": float(s.rpcs),
                    "pages_loaded": float(s.pages_loaded),
                    "pages_recycled": float(s.pages_recycled),
                    "invalidations_pushed": float(s.invalidations_pushed),
                    "reshares": float(getattr(s, "reshares", 0)),
                }
                directory = getattr(s, "directory", None)
                if directory is not None:
                    for key, value in directory.stats().items():
                        stats[f"directory_{key}"] = value
                return stats

            pipeline.add_counter_source("fusion.", snap, shard=str(index))
            registered += 1

    dbp_server = getattr(setup, "dbp_server", None)
    if dbp_server is not None:
        pipeline.add_counter_source(
            "dbp.",
            lambda d=dbp_server: {
                "rpcs": float(d.rpcs),
                "invalidation_messages": float(d.invalidation_messages),
            },
        )
        registered += 1
    return registered

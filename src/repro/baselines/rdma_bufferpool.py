"""The RDMA-based tiered disaggregated memory baseline (§2.2).

LegoBase / PolarDB Serverless architecture: a *local buffer pool* (LBP)
of host DRAM in front of *remote memory* on a dedicated memory node,
reached over RDMA at page (16 KB) granularity. Every LBP miss transfers
a whole page even if the query needs a few hundred bytes — the
read/write amplification the paper measures — and every dirty eviction
pushes a whole page back.

The remote memory node survives compute-host crashes, which is what the
RDMA-assisted recovery baseline exploits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..hardware.memory import AccessMeter, MappedMemory, MemoryRegion
from ..db.bufferpool import BufferPool, BufferPoolFullError, OffsetAccessor
from ..db.constants import PAGE_SIZE
from ..db.page import PageView, format_empty_page
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from ..sim.latency import LatencyConfig
from ..storage.pagestore import PageStore

__all__ = ["RemoteMemoryNode", "TieredRdmaBufferPool"]


class RemoteMemoryNode:
    """Disaggregated memory on a dedicated node, addressed over RDMA.

    Functionally a slotted page cache in a non-volatile (with respect to
    compute-host crashes) region. Every read/write by a compute host
    charges that host's RDMA NIC with a full-page transfer plus the
    Table 2 fixed latency.
    """

    def __init__(
        self,
        region: MemoryRegion,
        capacity_pages: int,
        config: Optional[LatencyConfig] = None,
    ) -> None:
        if region.size < capacity_pages * PAGE_SIZE:
            raise ValueError("remote region smaller than its page slots")
        self.region = region
        self.capacity_pages = capacity_pages
        self.config = config or LatencyConfig()
        self._slot_of: OrderedDict[int, int] = OrderedDict()  # LRU order
        self._free = list(range(capacity_pages - 1, -1, -1))
        self._dirty: set[int] = set()  # newer than storage
        self.reads = 0
        self.writes = 0

    def has(self, page_id: int) -> bool:
        return page_id in self._slot_of

    def read_page(self, page_id: int, meter: AccessMeter) -> bytes:
        """RDMA READ of one page into the caller's local memory."""
        slot = self._slot_of[page_id]
        self._slot_of.move_to_end(page_id)
        self.reads += 1
        meter.charge_transfer(
            "rdma", PAGE_SIZE, base_ns=self.config.rdma_read_ns(PAGE_SIZE)
        )
        meter.charge_transfer("rdma_ops", 1)
        tracer = obs_active()
        if tracer is not None:
            tracer.count("rdma.page_reads")
            tracer.count("rdma.read_bytes", PAGE_SIZE)
        return self.region.read(slot * PAGE_SIZE, PAGE_SIZE)

    def write_page(
        self, page_id: int, image: bytes, meter: AccessMeter, dirty: bool
    ) -> None:
        """RDMA WRITE of one page from the caller's local memory."""
        if len(image) != PAGE_SIZE:
            raise ValueError("remote write must be page sized")
        slot = self._slot_of.get(page_id)
        if slot is None:
            slot = self._claim_slot()
            self._slot_of[page_id] = slot
        self._slot_of.move_to_end(page_id)
        self.region.write(slot * PAGE_SIZE, image)
        if dirty:
            self._dirty.add(page_id)
        self.writes += 1
        meter.charge_transfer(
            "rdma", PAGE_SIZE, base_ns=self.config.rdma_write_ns(PAGE_SIZE)
        )
        meter.charge_transfer("rdma_ops", 1)
        tracer = obs_active()
        if tracer is not None:
            tracer.count("rdma.page_writes")
            tracer.count("rdma.write_bytes", PAGE_SIZE)

    def _claim_slot(self) -> int:
        if self._free:
            return self._free.pop()
        # Evict the least-recently-used *clean* remote page.
        for victim, slot in self._slot_of.items():
            if victim not in self._dirty:
                del self._slot_of[victim]
                return slot
        raise BufferPoolFullError(
            "remote memory full of dirty pages; checkpoint first"
        )

    def flush_to_storage(self, page_store: PageStore) -> int:
        """The memory node's own flusher: dirty remote pages → storage."""
        flushed = 0
        for page_id in sorted(self._dirty):
            slot = self._slot_of[page_id]
            page_store.write_page(page_id, self.region.read(slot * PAGE_SIZE, PAGE_SIZE))
            flushed += 1
        self._dirty.clear()
        return flushed

    @property
    def resident_count(self) -> int:
        return len(self._slot_of)


class TieredRdmaBufferPool(BufferPool):
    """LBP in host DRAM + remote memory over RDMA, page-granular."""

    def __init__(
        self,
        mapped: MappedMemory,
        remote: RemoteMemoryNode,
        page_store: PageStore,
        local_capacity_pages: int,
        meter: AccessMeter,
    ) -> None:
        if local_capacity_pages <= 0:
            raise ValueError("LBP needs at least one frame")
        if mapped.region.size < local_capacity_pages * PAGE_SIZE:
            raise ValueError("backing region smaller than the LBP")
        self.mapped = mapped
        self.remote = remote
        self.page_store = page_store
        self.local_capacity_pages = local_capacity_pages
        self.meter = meter
        self._frame_of: dict[int, int] = {}
        self._free_frames = list(range(local_capacity_pages - 1, -1, -1))
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._dirty: set[int] = set()
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.remote_fetches = 0
        self.storage_fetches = 0
        self.evictions = 0

    # -- BufferPool interface -----------------------------------------------------------

    def get_page(self, page_id: int) -> PageView:
        tracer = obs_active()
        frame = self._frame_of.get(page_id)
        if frame is None:
            self.misses += 1
            if tracer is not None:
                tracer.count("pool.rdma.misses")
            spans = spans_active()
            span = (
                spans.begin("page_fix", "lbp_miss", meter=self.meter, page=page_id)
                if spans is not None
                else None
            )
            frame = self._claim_frame()
            if self.remote.has(page_id):
                image = self.remote.read_page(page_id, self.meter)
                self.remote_fetches += 1
                if tracer is not None:
                    tracer.count("pool.rdma.remote_fetches")
            else:
                image = self.page_store.read_page(page_id)
                self.storage_fetches += 1
                if tracer is not None:
                    tracer.count("pool.rdma.storage_fetches")
            self.mapped.write(frame * PAGE_SIZE, image)
            self._frame_of[page_id] = frame
            if span is not None:
                spans.end(span)
        else:
            self.hits += 1
            if tracer is not None:
                tracer.count("pool.rdma.hits")
        self._touch(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._view(page_id, frame)

    def new_page(self, page_id: int, page_type: int, level: int = 0) -> PageView:
        if page_id in self._frame_of:
            raise ValueError(f"page {page_id} already resident")
        frame = self._claim_frame()
        self.mapped.write(
            frame * PAGE_SIZE, format_empty_page(page_id, page_type, level)
        )
        self._frame_of[page_id] = frame
        self._dirty.add(page_id)
        self._touch(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._view(page_id, frame)

    def install_page(self, page_id: int, image: bytes, dirty: bool = True) -> None:
        """Recovery: place a rebuilt image into the LBP (no transfer)."""
        frame = self._frame_of.get(page_id)
        if frame is None:
            frame = self._claim_frame()
            self._frame_of[page_id] = frame
        self.mapped.write(frame * PAGE_SIZE, image)
        if dirty:
            self._dirty.add(page_id)
        self._touch(page_id)

    def unpin(self, page_id: int) -> None:
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned page {page_id}")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def contains(self, page_id: int) -> bool:
        return page_id in self._frame_of

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frame_of:
            raise KeyError(f"page {page_id} not resident")
        self._dirty.add(page_id)

    def flush_page(self, page_id: int) -> None:
        frame = self._frame_of[page_id]
        image = self.mapped.read(frame * PAGE_SIZE, PAGE_SIZE)
        self.page_store.write_page(page_id, image)
        self._dirty.discard(page_id)

    def flush_dirty_pages(self) -> int:
        """Checkpoint path: local dirty → storage, then the remote tier's."""
        dirty = sorted(self._dirty)
        for page_id in dirty:
            self.flush_page(page_id)
        remote_flushed = self.remote.flush_to_storage(self.page_store)
        return len(dirty) + remote_flushed

    def resident_page_ids(self) -> list[int]:
        return list(self._frame_of)

    # -- internals ----------------------------------------------------------------------

    def _view(self, page_id: int, frame: Optional[int] = None) -> PageView:
        if frame is None:
            frame = self._frame_of[page_id]
        return PageView(page_id, OffsetAccessor(self.mapped, frame * PAGE_SIZE), self)

    def _touch(self, page_id: int) -> None:
        self._lru[page_id] = None
        self._lru.move_to_end(page_id)

    def _claim_frame(self) -> int:
        if self._free_frames:
            return self._free_frames.pop()
        return self._evict_one()

    def _evict_one(self) -> int:
        for victim in self._lru:
            if self._pins.get(victim, 0) == 0:
                break
        else:
            raise BufferPoolFullError("every LBP page is pinned")
        frame = self._frame_of[victim]
        dirty = victim in self._dirty
        if dirty or not self.remote.has(victim):
            # Push the page to remote memory — a full 16 KB RDMA WRITE
            # even when one field changed (write amplification).
            image = self.mapped.read(frame * PAGE_SIZE, PAGE_SIZE)
            self.remote.write_page(victim, image, self.meter, dirty=dirty)
        self._dirty.discard(victim)
        del self._frame_of[victim]
        del self._lru[victim]
        self.evictions += 1
        tracer = obs_active()
        if tracer is not None:
            tracer.count("pool.rdma.evictions")
        return frame

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    @property
    def resident_count(self) -> int:
        return len(self._frame_of)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""RDMA-based data sharing baseline (PolarDB-MP style, §3.3 / §4.4).

The distributed buffer pool (DBP) lives in remote memory on a memory
node; every database node keeps a *local buffer pool* of page copies.
The contrast with the CXL design is page granularity everywhere:

* a read miss (or an invalidated copy) costs a full 16 KB RDMA READ,
* releasing a write lock flushes the whole modified page to the DBP
  with a 16 KB RDMA WRITE — even for a one-column update — and then
  sends invalidation *messages* over RDMA to every other node holding
  the page,
* all of it competes for the same NIC bandwidth as ordinary misses.

Functionally, the DBP region is the authority; local frames are copies
that can go stale, and only the invalidation messages keep readers
correct — tests verify the protocol by looking for stale reads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..analysis.memsan import active as memsan_active
from ..db.bufferpool import BufferPool, BufferPoolFullError, OffsetAccessor
from ..db.constants import PAGE_SIZE
from ..db.page import PageView
from ..hardware.memory import AccessMeter, MappedMemory, MemoryRegion
from ..obs.spans import active as spans_active
from ..obs.trace import active as obs_active
from ..sim.latency import LatencyConfig
from ..storage.pagestore import PageStore

__all__ = ["RdmaDbpServer", "RdmaSharedBufferPool"]


class RdmaDbpServer:
    """Metadata server + remote-memory authority for the shared DBP."""

    def __init__(
        self,
        region: MemoryRegion,
        n_slots: int,
        page_store: PageStore,
        config: Optional[LatencyConfig] = None,
    ) -> None:
        if region.size < n_slots * PAGE_SIZE:
            raise ValueError("DBP region smaller than its slots")
        self.region = region
        self.n_slots = n_slots
        self.page_store = page_store
        self.config = config or LatencyConfig()
        self._slot_of: OrderedDict[int, int] = OrderedDict()
        self._free = list(range(n_slots - 1, -1, -1))
        self._dirty: set[int] = set()
        self._active: dict[int, dict[str, "RdmaSharedBufferPool"]] = {}
        self.rpcs = 0
        self.invalidation_messages = 0

    # -- node RPCs ------------------------------------------------------------------------

    def register(
        self,
        page_id: int,
        node_id: str,
        pool: "RdmaSharedBufferPool",
        meter: AccessMeter,
    ) -> None:
        """RPC: note that a node holds a copy; load the page on demand."""
        self.rpcs += 1
        meter.charge_ns(self.config.rpc_base_ns)
        meter.count("dbp_rpcs")
        if page_id not in self._slot_of:
            slot = self._claim_slot()
            image = self.page_store.read_page_unmetered(page_id)
            meter.charge_transfer(
                "storage", PAGE_SIZE, base_ns=self.config.storage_read_base_ns
            )
            self.region.write(slot * PAGE_SIZE, image)
            self._slot_of[page_id] = slot
        self._slot_of.move_to_end(page_id)
        self._active.setdefault(page_id, {})[node_id] = pool

    def read_page(self, page_id: int, meter: AccessMeter) -> bytes:
        """RDMA READ of the authoritative copy."""
        slot = self._slot_of[page_id]
        self._slot_of.move_to_end(page_id)
        meter.charge_transfer(
            "rdma", PAGE_SIZE, base_ns=self.config.rdma_read_ns(PAGE_SIZE)
        )
        meter.charge_transfer("rdma_ops", 1)
        tracer = obs_active()
        if tracer is not None:
            tracer.count("rdma.page_reads")
            tracer.count("rdma.read_bytes", PAGE_SIZE)
        return self.region.read(slot * PAGE_SIZE, PAGE_SIZE)

    def write_page_on_release(
        self, page_id: int, image: bytes, writer_node: str, meter: AccessMeter
    ) -> int:
        """Write-lock release: full-page RDMA WRITE + invalidation fan-out.

        Returns the number of invalidation messages sent.
        """
        slot = self._slot_of[page_id]
        self.region.write(slot * PAGE_SIZE, image)
        self._dirty.add(page_id)
        meter.charge_transfer(
            "rdma", PAGE_SIZE, base_ns=self.config.rdma_write_ns(PAGE_SIZE)
        )
        meter.charge_transfer("rdma_ops", 1)
        sent = 0
        tracer = obs_active()
        if tracer is not None:
            tracer.count("rdma.page_writes")
            tracer.count("rdma.write_bytes", PAGE_SIZE)
            tracer.emit("rdma", "flush_page", node=writer_node, page=page_id)
        for node_id, pool in self._active.get(page_id, {}).items():
            if node_id == writer_node:
                continue
            pool.invalidate_local(page_id)
            meter.charge_ns(self.config.rdma_message_ns)
            meter.charge_transfer("rdma_ops", 1)
            sent += 1
            if tracer is not None:
                tracer.emit(
                    "rdma",
                    "invalidate_msg",
                    page=page_id,
                    writer=writer_node,
                    target=node_id,
                )
        self.invalidation_messages += sent
        if tracer is not None and sent:
            tracer.count("rdma.invalidation_messages", sent)
        return sent

    # -- maintenance ------------------------------------------------------------------------

    def recycle(self, count: int) -> list[int]:
        """Free cold DBP slots; nodes holding copies are told to drop them."""
        recycled: list[int] = []
        for page_id in list(self._slot_of):
            if len(recycled) >= count:
                break
            slot = self._slot_of.pop(page_id)
            if page_id in self._dirty:
                self.page_store.write_page(
                    page_id, self.region.read(slot * PAGE_SIZE, PAGE_SIZE)
                )
                self._dirty.discard(page_id)
            for pool in self._active.pop(page_id, {}).values():
                pool.drop_local(page_id)
            self._free.append(slot)
            recycled.append(page_id)
        return recycled

    def flush_to_storage(self) -> int:
        flushed = 0
        for page_id in sorted(self._dirty):
            slot = self._slot_of[page_id]
            self.page_store.write_page(
                page_id, self.region.read(slot * PAGE_SIZE, PAGE_SIZE)
            )
            flushed += 1
        self._dirty.clear()
        return flushed

    def has_page(self, page_id: int) -> bool:
        return page_id in self._slot_of

    def _claim_slot(self) -> int:
        if self._free:
            return self._free.pop()
        if not self.recycle(max(1, self.n_slots // 64)):
            raise BufferPoolFullError("DBP out of slots")
        return self._free.pop()


class RdmaSharedBufferPool(BufferPool):
    """A node's LBP over the RDMA-shared DBP."""

    def __init__(
        self,
        node_id: str,
        server: RdmaDbpServer,
        mapped: MappedMemory,
        local_capacity_pages: int,
        meter: AccessMeter,
    ) -> None:
        if mapped.region.size < local_capacity_pages * PAGE_SIZE:
            raise ValueError("backing region smaller than the LBP")
        self.node_id = node_id
        self.server = server
        self.mapped = mapped
        self.local_capacity_pages = local_capacity_pages
        self.meter = meter
        self._frame_of: dict[int, int] = {}
        self._free_frames = list(range(local_capacity_pages - 1, -1, -1))
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._invalid: set[int] = set()
        self._registered: set[int] = set()
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.refetches = 0

    # -- BufferPool interface ----------------------------------------------------------------

    def get_page(self, page_id: int) -> PageView:
        tracer = obs_active()
        spans = spans_active()
        frame = self._frame_of.get(page_id)
        if frame is not None and page_id not in self._invalid:
            self.hits += 1
            if tracer is not None:
                tracer.count("rdma.lbp_hits")
            ms = memsan_active()
            if ms is not None:
                ms.page_cached_read(self.node_id, page_id)
        else:
            fix = (
                spans.begin("page_fix", "lbp_fetch", meter=self.meter, page=page_id)
                if spans is not None
                else None
            )
            if page_id not in self._registered:
                rpc = (
                    spans.begin("rpc", "register", meter=self.meter, page=page_id)
                    if spans is not None
                    else None
                )
                self.server.register(page_id, self.node_id, self, self.meter)
                if rpc is not None:
                    spans.end(rpc)
                self._registered.add(page_id)
            image = self.server.read_page(page_id, self.meter)
            if frame is None:
                self.misses += 1
                if tracer is not None:
                    tracer.count("rdma.lbp_misses")
                frame = self._claim_frame()
                self._frame_of[page_id] = frame
            else:
                self.refetches += 1
                if tracer is not None:
                    tracer.count("rdma.lbp_refetches")
            self.mapped.write(frame * PAGE_SIZE, image)
            self._invalid.discard(page_id)
            ms = memsan_active()
            if ms is not None:
                ms.page_fetch(self.node_id, page_id)
            if fix is not None:
                spans.end(fix)
        self._touch(page_id)
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return PageView(
            page_id, OffsetAccessor(self.mapped, frame * PAGE_SIZE), self
        )

    def new_page(self, page_id: int, page_type: int, level: int = 0) -> PageView:
        raise NotImplementedError(
            "multi-primary nodes operate on preloaded data (see DESIGN.md §6)"
        )

    def unpin(self, page_id: int) -> None:
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise RuntimeError(f"unpin of unpinned page {page_id}")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def contains(self, page_id: int) -> bool:
        return page_id in self._frame_of

    def mark_dirty(self, page_id: int) -> None:
        # Durability is handled by the whole-page flush at lock release.
        pass

    def flush_page(self, page_id: int) -> None:
        raise NotImplementedError("shared pages flush through the DBP server")

    def flush_dirty_pages(self) -> int:
        return 0

    def resident_page_ids(self) -> list[int]:
        return list(self._frame_of)

    # -- sharing protocol hooks -----------------------------------------------------------------

    def flush_page_writes(self, page_id: int) -> int:
        """Write-lock release: push the whole page to the DBP.

        Returns the number of invalidation messages fanned out.
        """
        frame = self._frame_of[page_id]
        image = self.mapped.read(frame * PAGE_SIZE, PAGE_SIZE)
        ms = memsan_active()
        if ms is not None:
            ms.page_publish(self.node_id, page_id)
        spans = spans_active()
        if spans is None:
            return self.server.write_page_on_release(
                page_id, image, self.node_id, self.meter
            )
        span = spans.begin(
            "cache_flush",
            "page_flush",
            meter=self.meter,
            node=self.node_id,
            page=page_id,
        )
        sent = self.server.write_page_on_release(
            page_id, image, self.node_id, self.meter
        )
        if sent:
            # Carve the invalidation fan-out (small two-sided messages)
            # out of the page flush: it is messaging, not data movement.
            spans.record(
                "rpc",
                "invalidate_fanout",
                parent=span,
                ns=sent * self.server.config.rdma_message_ns,
                page=page_id,
                messages=sent,
            )
        spans.end(span, nbytes=PAGE_SIZE, invalidations=sent)
        return sent

    def invalidate_local(self, page_id: int) -> None:
        """Invalidation message handler: our copy is stale."""
        if page_id in self._frame_of:
            self._invalid.add(page_id)

    def drop_local(self, page_id: int) -> None:
        """DBP recycled the page: forget it entirely."""
        frame = self._frame_of.pop(page_id, None)
        if frame is not None:
            del self._lru[page_id]
            self._free_frames.append(frame)
        self._invalid.discard(page_id)
        self._registered.discard(page_id)
        ms = memsan_active()
        if ms is not None:
            ms.page_dropped(self.node_id, page_id)

    # -- internals ----------------------------------------------------------------------------------

    def _touch(self, page_id: int) -> None:
        self._lru[page_id] = None
        self._lru.move_to_end(page_id)

    def _claim_frame(self) -> int:
        if self._free_frames:
            return self._free_frames.pop()
        for victim in self._lru:
            if self._pins.get(victim, 0) == 0:
                break
        else:
            raise BufferPoolFullError("every LBP page is pinned")
        # Copies are clean at eviction (writes flush at lock release).
        frame = self._frame_of.pop(victim)
        del self._lru[victim]
        self._invalid.discard(victim)
        ms = memsan_active()
        if ms is not None:
            ms.page_dropped(self.node_id, victim)
        return frame

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses + self.refetches
        return self.hits / total if total else 0.0

"""Vanilla ARIES-style recovery: full redo replay from storage (§4.3).

After a crash every buffered page is gone. Recovery scans the durable
redo log from the last checkpoint, reads each referenced page from
*storage*, applies the records under the page-LSN guard, and leaves the
rebuilt pages in the (otherwise cold) buffer pool. The database then
needs a long warm-up before it reaches pre-crash throughput — both
effects visible in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.recovery import apply_redo_to_image
from ..db.constants import PAGE_SIZE
from ..storage.pagestore import PageStore
from ..storage.wal import RedoLog, RedoRecord

__all__ = ["ReplayStats", "replay_recovery"]


@dataclass
class ReplayStats:
    """What a replay-style recovery did."""

    log_records: int = 0
    pages_redone: int = 0
    pages_from_buffer: int = 0
    pages_from_remote: int = 0
    pages_from_storage: int = 0
    pages_from_zero: int = 0
    records_applied: int = 0


def replay_recovery(
    pool,
    page_store: PageStore,
    redo_log: RedoLog,
    remote=None,
    meter=None,
) -> ReplayStats:
    """Replay the durable log into ``pool``; the vanilla and the
    RDMA-assisted schemes differ only in ``remote``.

    ``pool`` must expose ``install_page(page_id, image, dirty)``. With
    ``remote`` set (a :class:`~repro.baselines.rdma_bufferpool.RemoteMemoryNode`),
    page images come from disaggregated memory when present — cheaper
    than storage reads but still a full log replay, which is exactly the
    limitation the paper calls out for RDMA-based recovery (§2.2).
    """
    stats = ReplayStats()
    redo_log.recover_lsn_counter()
    records = redo_log.records_since(redo_log.checkpoint_lsn)
    stats.log_records = len(records)
    grouped: dict[int, list[RedoRecord]] = {}
    for record in records:
        grouped.setdefault(record.page_id, []).append(record)
    for page_id in sorted(grouped):
        if pool.contains(page_id):
            # Already buffered (e.g. a restarted replay): redo onto the
            # buffered version — the LSN guard makes this idempotent.
            view = pool.get_page(page_id)
            image = bytearray(view.image())
            pool.unpin(page_id)
            stats.pages_from_buffer += 1
        elif remote is not None and remote.has(page_id):
            if meter is None:
                raise ValueError("remote replay requires a meter")
            image = bytearray(remote.read_page(page_id, meter))
            stats.pages_from_remote += 1
        elif page_store.exists(page_id):
            image = bytearray(page_store.read_page(page_id))
            stats.pages_from_storage += 1
        else:
            image = bytearray(PAGE_SIZE)
            stats.pages_from_zero += 1
        stats.records_applied += apply_redo_to_image(image, grouped[page_id])
        pool.install_page(page_id, bytes(image), dirty=True)
        stats.pages_redone += 1
    return stats

"""RDMA-assisted recovery: full replay, pages fetched from remote memory.

The scheme used by LegoBase / PolarDB-MP-era systems (§2.2 item 2): the
remote memory tier survives the compute host crash, so the redo replay
reads page images from disaggregated memory (a ~7 µs RDMA read) instead
of storage (a ~150 µs cloud-storage read) whenever the page is resident
there. The log must still be scanned and applied in full — disaggregated
memory accelerates page I/O but does not shorten the recovery logic,
which is the gap PolarRecv closes.
"""

from __future__ import annotations

from ..hardware.memory import AccessMeter
from ..storage.pagestore import PageStore
from ..storage.wal import RedoLog
from .rdma_bufferpool import RemoteMemoryNode
from .vanilla_recovery import ReplayStats, replay_recovery

__all__ = ["rdma_assisted_recovery"]


def rdma_assisted_recovery(
    pool,
    page_store: PageStore,
    redo_log: RedoLog,
    remote: RemoteMemoryNode,
    meter: AccessMeter,
) -> ReplayStats:
    """Replay the durable log, preferring remote-memory page images."""
    return replay_recovery(
        pool, page_store, redo_log, remote=remote, meter=meter
    )

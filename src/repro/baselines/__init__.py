"""Baselines from the paper's evaluation: RDMA-tiered memory, RDMA
sharing, and vanilla / RDMA-assisted recovery."""

from .rdma_bufferpool import RemoteMemoryNode, TieredRdmaBufferPool
from .rdma_recovery import rdma_assisted_recovery
from .rdma_sharing import RdmaDbpServer, RdmaSharedBufferPool
from .vanilla_recovery import ReplayStats, replay_recovery

__all__ = [
    "RemoteMemoryNode",
    "TieredRdmaBufferPool",
    "rdma_assisted_recovery",
    "RdmaDbpServer",
    "RdmaSharedBufferPool",
    "ReplayStats",
    "replay_recovery",
]

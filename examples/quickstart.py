"""Quickstart: a database on CXL disaggregated memory, in 60 lines.

Builds a single PolarCXLMem-backed instance, runs sysbench
point-select against it, and contrasts it with a plain DRAM buffer
pool — the Figure 3 experiment in miniature.

Run:  python examples/quickstart.py
"""

from repro import PoolingDriver, SysbenchWorkload, build_pooling_setup


def run_system(system: str, workload: SysbenchWorkload) -> None:
    from repro.db.introspect import engine_report

    setup = build_pooling_setup(system, n_instances=1, workload=workload)
    driver = PoolingDriver(
        setup.sim,
        setup.instances,
        workload.txn_fn("point_select"),
        workers_per_instance=24,
        warmup_txns=2,
        measure_txns=12,
    )
    result = driver.run()
    cxl_gbps = result.pipe_bandwidth.get("cxl", 0.0) / 1e9
    report = engine_report(setup.instances[0].engine, include_trees=False)
    print(
        f"{system:>4s}-BP: {result.qps / 1e3:6.0f} K-QPS  "
        f"avg latency {result.avg_latency_ns / 1e3:5.1f} us  "
        f"CXL traffic {cxl_gbps:.2f} GB/s  "
        f"({report['buffer_pool']['kind']}, "
        f"{report['buffer_pool']['resident_count']} pages resident, "
        f"hit ratio {report['buffer_pool']['hit_ratio']:.3f})"
    )


def main() -> None:
    print("sysbench point-select, one 16-vCPU instance, warm buffer pool")
    workload = SysbenchWorkload(rows=3000)
    run_system("dram", workload)
    run_system("cxl", workload)
    print(
        "\nThe CXL buffer pool runs within a few percent of local DRAM —"
        "\nthe observation (paper Fig. 3) that lets PolarCXLMem drop the"
        "\ntiered local-buffer structure entirely."
    )


if __name__ == "__main__":
    main()

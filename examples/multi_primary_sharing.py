"""Multi-primary data sharing over CXL: coherency without hardware help.

Two demonstrations on a 4-node cluster:

1. the coherency protocol at work — node A updates a row, node B reads
   the new value even though B had the page's cache lines cached (and
   would read stale bytes if the invalid-flag protocol were removed);
2. throughput vs the RDMA sharing baseline at a few sharing levels.

Run:  python examples/multi_primary_sharing.py
"""

from repro import SharingDriver, SysbenchWorkload, build_sharing_setup


def coherency_demo() -> None:
    print("--- coherency walk-through (2 of 4 nodes shown) ---")
    workload = SysbenchWorkload(rows=1000, n_nodes=4)
    setup = build_sharing_setup("cxl", 4, workload)
    sim = setup.sim
    a, b = setup.nodes[0], setup.nodes[1]

    row = sim.run_process(b.point_select("sbtest_shared", 500))
    print(f"node B reads row 500: k={row['k']} (lines now in B's CPU cache)")

    sim.run_process(a.point_update("sbtest_shared", 500, "k", 4242))
    print("node A updates row 500 to k=4242: clflush + invalid flag for B")

    row = sim.run_process(b.point_select("sbtest_shared", 500))
    print(f"node B reads row 500 again: k={row['k']}")
    assert row["k"] == 4242, "coherency protocol failed!"

    assert setup.fusion is not None
    print(
        f"fusion server pushed {setup.fusion.invalidations_pushed} "
        f"invalidation flag(s); node B observed "
        f"{b.engine.buffer_pool.invalidations_observed}\n"
    )


def throughput_comparison() -> None:
    print("--- point-update throughput, 4 nodes, CXL vs RDMA sharing ---")
    print(f"{'shared':>8s} {'RDMA K-QPS':>12s} {'CXL K-QPS':>12s} {'improv':>8s}")
    runs = {}
    for system in ("rdma", "cxl"):
        workload = SysbenchWorkload(
            rows=1500, n_nodes=4, key_dist="zipf", zipf_theta=0.9
        )
        setup = build_sharing_setup(system, 4, workload)
        for pct in (20, 60, 100):
            for node in setup.nodes:
                node.engine.meter.reset()
            driver = SharingDriver(
                setup.sim,
                setup.nodes,
                setup.hosts,
                workload.sharing_txn_fn("point_update"),
                shared_pct=pct,
                workers_per_node=12,
                warmup_txns=1,
                measure_txns=4,
            )
            runs[(system, pct)] = driver.run().qps / 1e3
    for pct in (20, 60, 100):
        rdma, cxl = runs[("rdma", pct)], runs[("cxl", pct)]
        print(f"{pct:>7d}% {rdma:>12.0f} {cxl:>12.0f} {(cxl / rdma - 1) * 100:>+7.0f}%")


def main() -> None:
    coherency_demo()
    throughput_comparison()


if __name__ == "__main__":
    main()

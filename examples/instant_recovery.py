"""Instant recovery: kill the database, watch PolarRecv resurrect it.

Runs the Figure 10 experiment for one workload and prints a throughput
timeline per scheme — the crash dip and the warm-up ramp are visible in
the sparkline. PolarRecv restarts warm because the entire buffer pool
(pages *and* metadata) survived in CXL memory.

Run:  python examples/instant_recovery.py
"""

from repro import run_recovery_experiment
from repro.bench.report import format_series


def main() -> None:
    print("sysbench read-write; process killed mid-run; 5 ms buckets\n")
    for scheme in ("vanilla", "rdma", "polarrecv"):
        timeline = run_recovery_experiment(
            scheme, mix="read_write", rows=12_000
        )
        print(format_series(f"{scheme:>9s}", timeline.series))
        print(
            f"          crash at {timeline.crash_time_s * 1e3:.0f} ms, "
            f"recovery {timeline.recovery_seconds * 1e3:.2f} ms, "
            f"back to 90% throughput {timeline.warmup_seconds * 1e3:.1f} ms later"
        )
        detail = timeline.detail
        if hasattr(detail, "pages_kept"):
            print(
                f"          PolarRecv kept {detail.pages_kept} pages as-is, "
                f"rebuilt {detail.pages_rebuilt} "
                f"(locked: {detail.pages_rebuilt_locked}, "
                f"too-new: {detail.pages_rebuilt_too_new})"
            )
        elif hasattr(detail, "pages_redone"):
            print(
                f"          replayed {detail.log_records} redo records into "
                f"{detail.pages_redone} pages "
                f"({detail.pages_from_remote} from remote memory, "
                f"{detail.pages_from_storage} from storage)"
            )
        print()


if __name__ == "__main__":
    main()

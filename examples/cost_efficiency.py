"""Cost efficiency: the memory bill of tiered RDMA vs PolarCXLMem.

The paper's economic argument (§1, §4.4, Table 3): DRAM is ~40–50% of
server/rack cost, the RDMA design pays for a local buffer pool *on top
of* the disaggregated memory, and PolarCXLMem doesn't. This example
builds the Table 3 multi-primary deployments at small scale and prints
each configuration's throughput per unit of memory.

Run:  python examples/cost_efficiency.py
"""

from repro import SharingDriver, SysbenchWorkload, build_sharing_setup


def main() -> None:
    n_nodes = 6
    print(f"{n_nodes}-node multi-primary cluster, sysbench point-update, 20% shared\n")
    print(
        f"{'config':>14s} {'K-QPS':>8s} {'memory (MB)':>12s} "
        f"{'rel. memory':>12s} {'K-QPS per GB':>13s}"
    )
    rows = []
    for label, system, fraction in (
        ("RDMA 10% LBP", "rdma", 0.10),
        ("RDMA 30% LBP", "rdma", 0.30),
        ("RDMA 70% LBP", "rdma", 0.70),
        ("PolarCXLMem", "cxl", 0.0),
    ):
        workload = SysbenchWorkload(
            rows=1500, n_nodes=n_nodes, key_dist="zipf", zipf_theta=0.9
        )
        setup = build_sharing_setup(
            system, n_nodes, workload, lbp_fraction=fraction
        )
        driver = SharingDriver(
            setup.sim,
            setup.nodes,
            setup.hosts,
            workload.sharing_txn_fn("point_update"),
            shared_pct=20,
            workers_per_node=12,
            warmup_txns=1,
            measure_txns=4,
        )
        result = driver.run()
        rows.append((label, result.qps, setup.total_memory_bytes()))
    base_memory = min(memory for _, _, memory in rows)
    for label, qps, memory in rows:
        print(
            f"{label:>14s} {qps / 1e3:>8.0f} {memory / (1 << 20):>12.1f} "
            f"{memory / base_memory:>11.2f}x "
            f"{qps / 1e3 / (memory / (1 << 30)):>13.0f}"
        )
    print(
        "\nPolarCXLMem needs no per-node local buffer pool: every byte of"
        "\nits footprint is the shared DBP itself, so throughput-per-GB"
        "\ndominates every RDMA configuration (paper Table 3's memory"
        "\noverhead column)."
    )


if __name__ == "__main__":
    main()
